package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// The exploration flight recorder is a bounded per-session journal of
// wide events: one self-contained JSON object per steering iteration
// capturing where that iteration's time, samples and cache traffic
// went. The in-memory ring serves GET /v1/sessions/{id}/events; an
// optional sink persists the same lines as JSONL next to the session's
// WAL so a crashed or finished exploration can still be replayed into a
// per-phase latency/convergence report (aidebench -trace).
//
// Recording happens once per iteration on the session goroutine — off
// the per-sample hot path — and never feeds back into steering, so a
// session with the recorder attached stays bit-identical to one
// without.

// FlightEventSchema is the version stamped into every event. Bump it
// when a field changes meaning; consumers skip events with a newer
// schema than they understand.
const FlightEventSchema = 1

// FlightEvent is one iteration's wide event.
type FlightEvent struct {
	// Schema is the event-format version (FlightEventSchema).
	Schema int `json:"schema"`
	// Session is the recording session's id (stamped by the recorder).
	Session string `json:"session,omitempty"`
	// Iteration is the 0-based iteration number.
	Iteration int `json:"iteration"`
	// Time is when the iteration finished.
	Time time.Time `json:"time"`

	// DurationMS is the iteration's total system execution time;
	// PhaseMS breaks it down by steering phase (discovery,
	// misclassified, boundary, train).
	DurationMS float64            `json:"duration_ms"`
	PhaseMS    map[string]float64 `json:"phase_ms,omitempty"`

	// SamplesRequested is the iteration's sample budget; NewSamples and
	// NewRelevant count what labeling actually produced. PhaseSamples
	// and PhaseQueries attribute samples and extraction queries to
	// phases.
	SamplesRequested int            `json:"samples_requested"`
	NewSamples       int            `json:"new_samples"`
	NewRelevant      int            `json:"new_relevant"`
	PhaseSamples     map[string]int `json:"phase_samples,omitempty"`
	PhaseQueries     map[string]int `json:"phase_queries,omitempty"`

	// TotalLabeled is the cumulative labeling effort; MaxLabeledRows is
	// the session's budget cap (0 = unlimited) — together they are the
	// budget state.
	TotalLabeled   int `json:"total_labeled"`
	MaxLabeledRows int `json:"max_labeled_rows,omitempty"`

	// Conflicts counts label contradictions this iteration;
	// Degradations lists the budget fallbacks that were active.
	Conflicts    int      `json:"conflicts,omitempty"`
	Degradations []string `json:"degradations,omitempty"`

	// CacheHits/CacheMisses are the view's predicate-cache deltas over
	// this iteration (absent when the view has no cache).
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`

	// TreeNodes is the classifier size after retraining; RelevantAreas
	// the number of predicted relevant areas; Predicate the rendered
	// predicted-query predicate — the convergence signals.
	TreeNodes     int    `json:"tree_nodes"`
	RelevantAreas int    `json:"relevant_areas"`
	Predicate     string `json:"predicate,omitempty"`
}

// FlightRecorder keeps the most recent events in a ring and optionally
// mirrors each event to a persistent JSONL sink. Safe for one writer
// (the session goroutine) and many readers.
type FlightRecorder struct {
	mu      sync.Mutex
	session string
	cap     int
	ring    []FlightEvent
	next    int
	total   int64
	sink    io.Writer
	sinkErr error
}

// NewFlightRecorder creates a recorder for the given session keeping
// the last capacity events (capacity <= 0 defaults to 256). sink, when
// non-nil, receives each event as one JSON line; write failures are
// remembered (SinkErr) but do not fail recording.
func NewFlightRecorder(session string, capacity int, sink io.Writer) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{session: session, cap: capacity, sink: sink}
}

// Record stamps the event with the session id and schema version and
// appends it to the ring and the sink. Nil-safe.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	ev.Schema = FlightEventSchema
	f.mu.Lock()
	defer f.mu.Unlock()
	ev.Session = f.session
	if len(f.ring) < f.cap {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.next] = ev
		f.next = (f.next + 1) % f.cap
	}
	f.total++
	if f.sink != nil {
		line, err := json.Marshal(ev)
		if err == nil {
			line = append(line, '\n')
			_, err = f.sink.Write(line)
		}
		if err != nil && f.sinkErr == nil {
			f.sinkErr = err
		}
	}
}

// Total returns how many events were ever recorded.
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// SinkErr returns the first sink write failure, or nil.
func (f *FlightRecorder) SinkErr() error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sinkErr
}

// Snapshot returns the retained events oldest-first.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.ring))
	for i := 0; i < len(f.ring); i++ {
		out = append(out, f.ring[(f.next+i)%len(f.ring)])
	}
	return out
}

// WriteJSONL writes the retained events as JSONL, the same format the
// persistent sink receives.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	for _, ev := range f.Snapshot() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// ReadJournal parses a flight-recorder JSONL journal, skipping blank
// lines and events with a schema newer than this build understands. A
// malformed line fails the whole read: journals are machine-written,
// so corruption should surface, not vanish.
func ReadJournal(r io.Reader) ([]FlightEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var out []FlightEvent
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev FlightEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return out, fmt.Errorf("obs: journal line %d: %w", lineNo, err)
		}
		if ev.Schema > FlightEventSchema {
			continue
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: reading journal: %w", err)
	}
	return out, nil
}
