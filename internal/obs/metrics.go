// Package obs is the observability substrate of the AIDE reproduction:
// a lock-cheap metrics registry (counters, gauges, fixed-bucket latency
// histograms) plus a per-session span tracer (trace.go). The paper's
// claims are about where time and samples go — per-iteration exploration
// overhead, query execution cost, labeling effort (Sections 6.3-6.4) —
// and this package is how the running system exposes those quantities.
//
// All hot-path operations are single atomic instructions; registry
// lookups happen once at package init of the instrumented packages.
// Output is expvar-flavored JSON: a flat object mapping metric names to
// values, histograms rendering as {count, sum, p50, p95, p99} summaries.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can move in both directions (in-flight
// requests, current F-measure, active sessions).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets are the histogram bucket upper bounds used for
// latency metrics, in seconds: 10µs to 10s, roughly exponential.
var DefaultLatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Observations above the last bucket bound land in an overflow bucket.
type Histogram struct {
	bounds []float64      // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram creates a histogram over the given ascending bucket upper
// bounds (nil: DefaultLatencyBuckets). A trailing +Inf bound is dropped:
// it duplicates the implicit overflow bucket, and keeping it would both
// render a duplicate le="+Inf" exposition series and poison quantile
// interpolation.
func NewHistogram(bounds []float64) *Histogram {
	for len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
		bounds = bounds[:len(bounds)-1]
	}
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Buckets returns the bucket upper bounds and the per-bucket counts;
// counts has one extra trailing element for the overflow (+Inf) bucket.
// The counts are a snapshot copy.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the target rank. It returns 0 for an empty
// histogram; ranks in the overflow bucket return the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			cum += n
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSummary is the JSON rendering of a histogram.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary returns count, sum and the p50/p95/p99 estimates.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Registry holds named metrics. Lookups take a lock; instrumented
// packages resolve their metrics once and then touch only atomics.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
	collectors  []func(*Registry)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// RegisterCollector adds a scrape-time callback: every Snapshot,
// WriteJSON and WritePrometheus first runs the collectors, which update
// gauges/histograms that are cheaper to read on demand than to maintain
// continuously (the Go runtime stats, occupancy gauges). Collectors run
// outside the registry lock and must be safe for concurrent calls.
func (r *Registry) RegisterCollector(fn func(*Registry)) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// collect runs the registered scrape-time collectors.
func (r *Registry) collect() {
	r.mu.RLock()
	fns := r.collectors
	r.mu.RUnlock()
	for _, fn := range fns {
		fn(r)
	}
}

// Default is the process-wide registry the instrumented packages use.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with
// DefaultLatencyBuckets if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets returns the named histogram, creating it over the
// given bucket bounds if needed (nil: DefaultLatencyBuckets). An
// existing histogram keeps its original buckets.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GetCounter returns the named counter from the Default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns the named gauge from the Default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns the named histogram from the Default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// Snapshot returns every metric's current value keyed by name: int64 for
// counters, float64 for gauges, HistogramSummary for histograms. Labeled
// series render under `name{label="value"}` keys. Registered collectors
// run first so scrape-time gauges are fresh.
func (r *Registry) Snapshot() map[string]any {
	r.collect()
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Summary()
	}
	for name, cv := range r.counterVecs {
		for _, s := range cv.v.snapshot() {
			out[seriesKey(name, cv.v.label, s.value)] = s.metric.Value()
		}
	}
	for name, gv := range r.gaugeVecs {
		for _, s := range gv.v.snapshot() {
			out[seriesKey(name, gv.v.label, s.value)] = s.metric.Value()
		}
	}
	for name, hv := range r.histVecs {
		for _, s := range hv.v.snapshot() {
			out[seriesKey(name, hv.v.label, s.value)] = s.metric.Summary()
		}
	}
	return out
}

// seriesKey renders one labeled series' JSON key.
func seriesKey(name, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, label, value)
}

// WriteJSON writes the registry as expvar-flavored JSON: one flat object
// with metric names as keys, sorted for stable output.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := fmt.Fprint(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		val, err := json.Marshal(snap[name])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%q: %s", sep, name, val); err != nil {
			return err
		}
	}
	_, err := fmt.Fprint(w, "\n}\n")
	return err
}

// Handler returns an http.Handler serving WriteJSON, the /debug/vars
// equivalent for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
