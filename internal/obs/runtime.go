package obs

import (
	"runtime"
	"sync"
)

// Go runtime telemetry: goroutine count, heap occupancy and a GC pause
// histogram, collected at scrape time (Snapshot / WriteJSON /
// WritePrometheus) rather than continuously — reading MemStats costs a
// stop-the-world of microseconds, far too much for hot paths but
// irrelevant at scrape frequency. The default registry installs the
// collector at package init so every process exposing /v1/metrics or
// /metrics carries the runtime series with zero setup.

// GCPauseBuckets are the GC pause histogram bounds: 10µs to 100ms.
var GCPauseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
}

// runtimeCollector feeds the go_* series of one registry.
type runtimeCollector struct {
	mu        sync.Mutex
	lastNumGC uint32
}

// collect updates the registry's runtime gauges and drains new GC
// pauses (since the previous scrape) into the pause histogram.
func (rc *runtimeCollector) collect(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("go_memstats_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("go_memstats_heap_sys_bytes").Set(float64(ms.HeapSys))
	r.Gauge("go_memstats_heap_objects").Set(float64(ms.HeapObjects))
	r.Gauge("go_memstats_next_gc_bytes").Set(float64(ms.NextGC))
	r.Gauge("go_gc_cpu_fraction").Set(ms.GCCPUFraction)

	rc.mu.Lock()
	defer rc.mu.Unlock()
	last := rc.lastNumGC
	if gc := r.Counter("go_gc_cycles_total"); ms.NumGC >= last {
		gc.Add(int64(ms.NumGC - last))
	}
	// PauseNs is a 256-entry ring of recent pause durations; replay only
	// the cycles that finished since the last scrape.
	pauses := r.Histogram("go_gc_pause_seconds")
	n := ms.NumGC - last
	if n > uint32(len(ms.PauseNs)) {
		n = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < n; i++ {
		cycle := ms.NumGC - i
		pauses.Observe(float64(ms.PauseNs[(cycle+255)%256]) / 1e9)
	}
	rc.lastNumGC = ms.NumGC
}

// EnableRuntimeMetrics installs the Go runtime collector on the
// registry (goroutines, heap gauges, GC cycle counter and pause
// histogram, all prefixed go_). The default registry has it installed
// already; call this only for private registries.
func EnableRuntimeMetrics(r *Registry) {
	rc := &runtimeCollector{}
	// Seed lastNumGC so the first scrape reports only pauses from the
	// process's recent history, not an unbounded replay.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.NumGC > 256 {
		rc.lastNumGC = ms.NumGC - 256
	}
	// The pause histogram needs GC-scale buckets, not request-latency
	// ones; create it before a scrape can default it.
	r.HistogramBuckets("go_gc_pause_seconds", GCPauseBuckets)
	r.RegisterCollector(rc.collect)
}

func init() { EnableRuntimeMetrics(Default) }
