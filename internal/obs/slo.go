package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO monitoring: the service records every request's latency and
// outcome; the monitor keeps time-bucketed good/bad counts and computes
// multi-window burn rates — how fast the error budget is being spent —
// following the SRE-workbook pattern: an SLO is breached operationally
// when BOTH a short window (reacting quickly) and a long window
// (filtering blips) burn faster than the alert threshold.
//
// Two objectives are tracked: a latency SLO (fraction of requests
// answered under a threshold) and an availability SLO (fraction of
// requests that do not fail server-side).

// SLOConfig declares the objectives. The zero value is not valid; start
// from DefaultSLOConfig.
type SLOConfig struct {
	// LatencyThreshold is the "fast enough" bound: a request slower
	// than this is bad for the latency SLO.
	LatencyThreshold time.Duration
	// LatencyObjective is the target fraction of fast requests
	// (e.g. 0.99).
	LatencyObjective float64
	// ErrorObjective is the target fraction of non-error requests
	// (e.g. 0.999). 5xx responses count as errors.
	ErrorObjective float64
	// ShortWindow and LongWindow are the two burn-rate windows
	// (defaults 5m and 1h). LongWindow also bounds how much history the
	// monitor retains.
	ShortWindow time.Duration
	LongWindow  time.Duration
	// BurnAlertThreshold is the burn rate both windows must exceed for
	// the SLO to report burning (default 2: spending budget at twice
	// the sustainable rate).
	BurnAlertThreshold float64
}

// DefaultSLOConfig returns the service defaults: 99% of requests under
// 500ms, 99.9% non-error, 5m/1h windows, alert at 2x burn.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		LatencyThreshold:   500 * time.Millisecond,
		LatencyObjective:   0.99,
		ErrorObjective:     0.999,
		ShortWindow:        5 * time.Minute,
		LongWindow:         time.Hour,
		BurnAlertThreshold: 2,
	}
}

// Validate rejects nonsensical configurations.
func (c SLOConfig) Validate() error {
	if c.LatencyThreshold <= 0 {
		return fmt.Errorf("obs: slo LatencyThreshold must be positive, got %v", c.LatencyThreshold)
	}
	for name, obj := range map[string]float64{"LatencyObjective": c.LatencyObjective, "ErrorObjective": c.ErrorObjective} {
		if obj <= 0 || obj >= 1 {
			return fmt.Errorf("obs: slo %s must be in (0,1), got %g", name, obj)
		}
	}
	if c.ShortWindow <= 0 || c.LongWindow <= 0 || c.ShortWindow > c.LongWindow {
		return fmt.Errorf("obs: slo windows must satisfy 0 < short <= long, got %v/%v", c.ShortWindow, c.LongWindow)
	}
	if c.BurnAlertThreshold <= 0 {
		return fmt.Errorf("obs: slo BurnAlertThreshold must be positive, got %g", c.BurnAlertThreshold)
	}
	return nil
}

// sloBucket is one time slice's counts.
type sloBucket struct {
	start  time.Time
	total  int64
	slow   int64
	errors int64
}

// sloRingBuckets fixes the ring resolution: LongWindow/60 per bucket
// (1m buckets for the default 1h window).
const sloRingBuckets = 60

// SLOMonitor accumulates request outcomes into a bucket ring and
// derives burn rates on demand. Safe for concurrent use; Record is two
// atomic-free increments under a short mutex, fine at request (not
// sample-scan) frequency.
type SLOMonitor struct {
	cfg  SLOConfig
	now  func() time.Time // injectable clock for tests
	mu   sync.Mutex
	ring [sloRingBuckets]sloBucket
	gran time.Duration
}

// NewSLOMonitor builds a monitor for the given config (start from
// DefaultSLOConfig).
func NewSLOMonitor(cfg SLOConfig) (*SLOMonitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SLOMonitor{cfg: cfg, now: time.Now, gran: cfg.LongWindow / sloRingBuckets}, nil
}

// Config returns the monitor's objectives.
func (m *SLOMonitor) Config() SLOConfig { return m.cfg }

// Record adds one request outcome. Nil-safe.
func (m *SLOMonitor) Record(latency time.Duration, isError bool) {
	if m == nil {
		return
	}
	now := m.now()
	m.mu.Lock()
	b := m.bucketFor(now)
	b.total++
	if latency > m.cfg.LatencyThreshold {
		b.slow++
	}
	if isError {
		b.errors++
	}
	m.mu.Unlock()
}

// bucketFor returns the live bucket for t, recycling stale slots.
// Callers hold m.mu.
func (m *SLOMonitor) bucketFor(t time.Time) *sloBucket {
	slot := int(t.UnixNano()/int64(m.gran)) % sloRingBuckets
	if slot < 0 {
		slot += sloRingBuckets
	}
	b := &m.ring[slot]
	start := t.Truncate(m.gran)
	if !b.start.Equal(start) {
		*b = sloBucket{start: start}
	}
	return b
}

// SLOWindowStatus is one objective's state over one window.
type SLOWindowStatus struct {
	// Window is the window length, e.g. "5m0s".
	Window string `json:"window"`
	// Total and Bad count requests and objective violations inside the
	// window.
	Total int64 `json:"total"`
	Bad   int64 `json:"bad"`
	// BadFraction is Bad/Total (0 when idle).
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction divided by the objective's error budget:
	// 1 means the budget exactly sustains, above 1 it is being spent
	// too fast.
	BurnRate float64 `json:"burn_rate"`
}

// SLOObjectiveStatus is one objective's multi-window state.
type SLOObjectiveStatus struct {
	// Objective is the target good fraction; Budget the allowed bad
	// fraction (1 - Objective).
	Objective float64 `json:"objective"`
	Budget    float64 `json:"budget"`
	// ThresholdMS is set for the latency objective only.
	ThresholdMS float64 `json:"threshold_ms,omitempty"`
	// Short and Long are the two burn windows.
	Short SLOWindowStatus `json:"short"`
	Long  SLOWindowStatus `json:"long"`
	// Burning reports both windows exceeding the alert threshold.
	Burning bool `json:"burning"`
}

// SLOStatus is the full monitor state served on /v1/slo.
type SLOStatus struct {
	Latency SLOObjectiveStatus `json:"latency"`
	Errors  SLOObjectiveStatus `json:"errors"`
	// Healthy is true when no objective is burning.
	Healthy bool `json:"healthy"`
	// BurnAlertThreshold echoes the configured alert threshold.
	BurnAlertThreshold float64 `json:"burn_alert_threshold"`
}

// Status computes the multi-window burn rates. Nil-safe: a nil monitor
// reports an empty, healthy status.
func (m *SLOMonitor) Status() SLOStatus {
	if m == nil {
		return SLOStatus{Healthy: true}
	}
	now := m.now()
	m.mu.Lock()
	shortTotal, shortSlow, shortErrs := m.sum(now, m.cfg.ShortWindow)
	longTotal, longSlow, longErrs := m.sum(now, m.cfg.LongWindow)
	m.mu.Unlock()

	latency := m.objective(m.cfg.LatencyObjective,
		window(m.cfg.ShortWindow, shortTotal, shortSlow),
		window(m.cfg.LongWindow, longTotal, longSlow))
	latency.ThresholdMS = float64(m.cfg.LatencyThreshold) / float64(time.Millisecond)
	errors := m.objective(m.cfg.ErrorObjective,
		window(m.cfg.ShortWindow, shortTotal, shortErrs),
		window(m.cfg.LongWindow, longTotal, longErrs))
	return SLOStatus{
		Latency:            latency,
		Errors:             errors,
		Healthy:            !latency.Burning && !errors.Burning,
		BurnAlertThreshold: m.cfg.BurnAlertThreshold,
	}
}

// sum totals the ring's buckets younger than window. Callers hold m.mu.
func (m *SLOMonitor) sum(now time.Time, window time.Duration) (total, slow, errors int64) {
	cutoff := now.Add(-window)
	for i := range m.ring {
		b := &m.ring[i]
		if b.start.IsZero() || b.start.Before(cutoff.Truncate(m.gran)) || b.start.After(now) {
			continue
		}
		total += b.total
		slow += b.slow
		errors += b.errors
	}
	return total, slow, errors
}

// window builds one window's raw status.
func window(w time.Duration, total, bad int64) SLOWindowStatus {
	st := SLOWindowStatus{Window: w.String(), Total: total, Bad: bad}
	if total > 0 {
		st.BadFraction = float64(bad) / float64(total)
	}
	return st
}

// objective finishes one objective's status from its raw windows.
func (m *SLOMonitor) objective(obj float64, short, long SLOWindowStatus) SLOObjectiveStatus {
	budget := 1 - obj
	if budget > 0 {
		short.BurnRate = short.BadFraction / budget
		long.BurnRate = long.BadFraction / budget
	}
	return SLOObjectiveStatus{
		Objective: obj,
		Budget:    budget,
		Short:     short,
		Long:      long,
		Burning: short.BurnRate >= m.cfg.BurnAlertThreshold &&
			long.BurnRate >= m.cfg.BurnAlertThreshold,
	}
}
