package obs

import (
	"sync"
	"time"
)

// Span is one timed operation in a trace tree: an exploration iteration
// at the root, with children for the three steering phases, classifier
// retraining, and each engine query. Spans are built by a single
// goroutine and become visible to readers only when the root span Ends
// and is published into its Recorder, so building needs no locks.
//
// All methods are nil-safe: instrumented code can call them
// unconditionally and pay nothing when tracing is off.
type Span struct {
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
	rec      *Recorder // set on roots only
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Child starts a child span. It returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// SetAttr annotates the span; later values for the same key win at
// snapshot time.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span. Ending a root span publishes the whole tree
// into its Recorder; the tree must not be mutated afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.end.IsZero() {
		s.end = time.Now()
	}
	if s.rec != nil {
		s.rec.publish(s)
	}
}

// Recorder keeps a bounded ring buffer of the most recent finished root
// spans — one recorder per exploration session, capacity bounding memory
// no matter how long the session runs.
type Recorder struct {
	mu    sync.Mutex
	cap   int
	ring  []*Span
	next  int
	total int64
}

// NewRecorder creates a recorder keeping the last capacity root spans
// (capacity <= 0 defaults to 64).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 64
	}
	return &Recorder{cap: capacity}
}

// Start begins a new root span. It returns nil when r is nil, and the
// span's End publishes it into the ring.
func (r *Recorder) Start(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), rec: r}
}

func (r *Recorder) publish(s *Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next] = s
		r.next = (r.next + 1) % r.cap
	}
	r.total++
}

// Total returns how many root spans have ever been published.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// SpanData is the exported, JSON-ready form of a finished span.
type SpanData struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanData     `json:"children,omitempty"`
}

// Snapshot returns the recorded root spans oldest-first. The returned
// data is a deep copy, safe to serve while the session keeps running.
func (r *Recorder) Snapshot() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, 0, len(r.ring))
	// Oldest-first: ring[next:] then ring[:next] once the ring wrapped.
	for i := 0; i < len(r.ring); i++ {
		s := r.ring[(r.next+i)%len(r.ring)]
		out = append(out, s.data())
	}
	return out
}

// data converts a finished span tree to SpanData.
func (s *Span) data() SpanData {
	d := SpanData{
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(s.end.Sub(s.start)) / float64(time.Millisecond),
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	if len(s.children) > 0 {
		d.Children = make([]SpanData, len(s.children))
		for i, c := range s.children {
			if c.end.IsZero() {
				// A child left unended inherits its parent's end.
				c.end = s.end
			}
			d.Children[i] = c.data()
		}
	}
	return d
}
