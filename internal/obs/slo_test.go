package obs

import (
	"testing"
	"time"
)

// sloTestMonitor builds a monitor with a controllable clock.
func sloTestMonitor(t *testing.T) (*SLOMonitor, *time.Time) {
	t.Helper()
	m, err := NewSLOMonitor(DefaultSLOConfig())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	m.now = func() time.Time { return now }
	return m, &now
}

func TestSLOHealthyUnderGoodTraffic(t *testing.T) {
	m, _ := sloTestMonitor(t)
	for i := 0; i < 1000; i++ {
		m.Record(10*time.Millisecond, false)
	}
	st := m.Status()
	if !st.Healthy || st.Latency.Burning || st.Errors.Burning {
		t.Errorf("status = %+v, want healthy", st)
	}
	if st.Latency.Short.Total != 1000 || st.Latency.Short.Bad != 0 {
		t.Errorf("latency short window = %+v", st.Latency.Short)
	}
}

func TestSLOErrorBurn(t *testing.T) {
	m, _ := sloTestMonitor(t)
	// 1% server errors against a 99.9% objective: burn rate 10x in both
	// windows, far past the 2x alert threshold.
	for i := 0; i < 1000; i++ {
		m.Record(time.Millisecond, i%100 == 0)
	}
	st := m.Status()
	if !st.Errors.Burning || st.Healthy {
		t.Errorf("status = %+v, want errors burning", st)
	}
	if st.Errors.Short.BurnRate < 2 || st.Errors.Long.BurnRate < 2 {
		t.Errorf("burn rates = %v/%v, want >= 2", st.Errors.Short.BurnRate, st.Errors.Long.BurnRate)
	}
	if st.Latency.Burning {
		t.Error("latency burning without slow requests")
	}
}

func TestSLOLatencyBurn(t *testing.T) {
	m, _ := sloTestMonitor(t)
	// 10% of requests over the 500ms threshold against a 99% objective:
	// 10x burn.
	for i := 0; i < 1000; i++ {
		lat := time.Millisecond
		if i%10 == 0 {
			lat = time.Second
		}
		m.Record(lat, false)
	}
	st := m.Status()
	if !st.Latency.Burning || st.Healthy {
		t.Errorf("status = %+v, want latency burning", st)
	}
}

func TestSLOShortWindowRecovery(t *testing.T) {
	m, now := sloTestMonitor(t)
	// A burst of errors, then six minutes of clean traffic: the short
	// window clears (errors aged out), so the multi-window rule stops
	// alerting even though the long window still remembers the burst.
	for i := 0; i < 100; i++ {
		m.Record(time.Millisecond, true)
	}
	if st := m.Status(); !st.Errors.Burning {
		t.Fatalf("burst not burning: %+v", st.Errors)
	}
	*now = now.Add(6 * time.Minute)
	for i := 0; i < 100; i++ {
		m.Record(time.Millisecond, false)
	}
	st := m.Status()
	if st.Errors.Burning {
		t.Errorf("still burning after short window cleared: %+v", st.Errors)
	}
	if st.Errors.Long.Bad != 100 {
		t.Errorf("long window bad = %d, want 100 (burst retained)", st.Errors.Long.Bad)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	m, now := sloTestMonitor(t)
	for i := 0; i < 50; i++ {
		m.Record(time.Millisecond, true)
	}
	*now = now.Add(2 * time.Hour) // past the long window
	m.Record(time.Millisecond, false)
	st := m.Status()
	if st.Errors.Long.Total != 1 || st.Errors.Long.Bad != 0 {
		t.Errorf("long window after expiry = %+v, want only the fresh request", st.Errors.Long)
	}
	if !st.Healthy {
		t.Errorf("status = %+v, want healthy after history expired", st)
	}
}

func TestSLONilMonitor(t *testing.T) {
	var m *SLOMonitor
	m.Record(time.Second, true) // must not panic
	if st := m.Status(); !st.Healthy {
		t.Errorf("nil monitor status = %+v, want healthy", st)
	}
}

func TestSLOConfigValidate(t *testing.T) {
	bad := []func(*SLOConfig){
		func(c *SLOConfig) { c.LatencyThreshold = 0 },
		func(c *SLOConfig) { c.LatencyObjective = 1 },
		func(c *SLOConfig) { c.ErrorObjective = 0 },
		func(c *SLOConfig) { c.ShortWindow = 2 * c.LongWindow },
		func(c *SLOConfig) { c.BurnAlertThreshold = -1 },
	}
	for i, mutate := range bad {
		c := DefaultSLOConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if err := DefaultSLOConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
