package obs

import (
	"sort"
	"sync"
)

// MaxLabelValues bounds the cardinality of one labeled metric vector:
// beyond this many distinct label values, further values collapse into
// the OverflowLabel series. The bound keeps a buggy or adversarial
// caller (e.g. one labeling by session id) from growing the registry —
// and every scrape — without limit. Instrumented packages use a handful
// of fixed values (phases, cache ops, pool states, endpoints), far
// below the cap.
const MaxLabelValues = 64

// OverflowLabel is the label value that absorbs observations once a
// vector hits MaxLabelValues distinct values.
const OverflowLabel = "other"

// series is one labeled child's identity inside a vector.
type series[T any] struct {
	value  string
	metric *T
}

// vec is the shared implementation of the three metric vectors: a
// bounded map from label value to child metric. With is an RLock + map
// hit on the steady state; instrumented code resolves its children once
// at init and then touches only the child's atomics, so vectors add
// nothing to hot paths.
type vec[T any] struct {
	name  string
	label string
	mu    sync.RWMutex
	kids  map[string]*T
	make  func() *T
}

func newVec[T any](name, label string, mk func() *T) *vec[T] {
	return &vec[T]{name: name, label: label, kids: make(map[string]*T), make: mk}
}

// with returns the child for the given label value, creating it if the
// cardinality bound allows; past the bound the overflow child absorbs
// the value.
func (v *vec[T]) with(value string) *T {
	v.mu.RLock()
	m := v.kids[value]
	v.mu.RUnlock()
	if m != nil {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m = v.kids[value]; m != nil {
		return m
	}
	if len(v.kids) >= MaxLabelValues && value != OverflowLabel {
		if m = v.kids[OverflowLabel]; m != nil {
			return m
		}
		value = OverflowLabel
	}
	m = v.make()
	v.kids[value] = m
	return m
}

// snapshot returns the children sorted by label value.
func (v *vec[T]) snapshot() []series[T] {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]series[T], 0, len(v.kids))
	for val, m := range v.kids {
		out = append(out, series[T]{value: val, metric: m})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}

// CounterVec is a family of counters distinguished by one label, e.g.
// engine_cache_ops{op="hit"|"miss"|"evict"}.
type CounterVec struct{ v *vec[Counter] }

// With returns the counter for the given label value. Resolve once and
// keep the pointer on hot paths.
func (c *CounterVec) With(value string) *Counter { return c.v.with(value) }

// GaugeVec is a family of gauges distinguished by one label, e.g.
// par_pool{state="queued"|"running"}.
type GaugeVec struct{ v *vec[Gauge] }

// With returns the gauge for the given label value.
func (g *GaugeVec) With(value string) *Gauge { return g.v.with(value) }

// HistogramVec is a family of histograms distinguished by one label,
// e.g. aide_iteration_seconds{phase="discovery"}. All children share
// the vector's bucket bounds.
type HistogramVec struct {
	v      *vec[Histogram]
	bounds []float64
}

// With returns the histogram for the given label value.
func (h *HistogramVec) With(value string) *Histogram { return h.v.with(value) }

// CounterVec returns the named counter vector with the given label key,
// creating it if needed. A name registers at most one label key; later
// calls reuse the first registration's key.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	r.mu.RLock()
	cv := r.counterVecs[name]
	r.mu.RUnlock()
	if cv != nil {
		return cv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if cv = r.counterVecs[name]; cv == nil {
		cv = &CounterVec{v: newVec(name, label, func() *Counter { return &Counter{} })}
		r.counterVecs[name] = cv
	}
	return cv
}

// GaugeVec returns the named gauge vector with the given label key.
func (r *Registry) GaugeVec(name, label string) *GaugeVec {
	r.mu.RLock()
	gv := r.gaugeVecs[name]
	r.mu.RUnlock()
	if gv != nil {
		return gv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if gv = r.gaugeVecs[name]; gv == nil {
		gv = &GaugeVec{v: newVec(name, label, func() *Gauge { return &Gauge{} })}
		r.gaugeVecs[name] = gv
	}
	return gv
}

// HistogramVec returns the named histogram vector with the given label
// key, children bucketed by bounds (nil: DefaultLatencyBuckets).
func (r *Registry) HistogramVec(name, label string, bounds []float64) *HistogramVec {
	r.mu.RLock()
	hv := r.histVecs[name]
	r.mu.RUnlock()
	if hv != nil {
		return hv
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if hv = r.histVecs[name]; hv == nil {
		if len(bounds) == 0 {
			bounds = DefaultLatencyBuckets
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		hv = &HistogramVec{bounds: b}
		hv.v = newVec(name, label, func() *Histogram { return NewHistogram(hv.bounds) })
		r.histVecs[name] = hv
	}
	return hv
}

// GetCounterVec returns the named counter vector from the Default
// registry.
func GetCounterVec(name, label string) *CounterVec { return Default.CounterVec(name, label) }

// GetGaugeVec returns the named gauge vector from the Default registry.
func GetGaugeVec(name, label string) *GaugeVec { return Default.GaugeVec(name, label) }

// GetHistogramVec returns the named histogram vector from the Default
// registry with DefaultLatencyBuckets.
func GetHistogramVec(name, label string) *HistogramVec {
	return Default.HistogramVec(name, label, nil)
}
