package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.cache.hits").Add(5)
	r.Gauge("sessions.active").Set(2)
	r.HistogramBuckets("req.seconds", []float64{0.01, 0.1, 1}).Observe(0.05)
	r.CounterVec("cache_ops", "op").With("hit").Add(3)
	r.CounterVec("cache_ops", "op").With("miss").Add(1)
	r.HistogramVec("iter_seconds", "phase", []float64{0.1, 1}).With("discovery").Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE engine_cache_hits counter",
		"engine_cache_hits 5",
		"# TYPE sessions_active gauge",
		"sessions_active 2",
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{le="0.01"} 0`,
		`req_seconds_bucket{le="0.1"} 1`, // cumulative: the 0.05 obs
		`req_seconds_bucket{le="+Inf"} 1`,
		"req_seconds_count 1",
		`cache_ops{op="hit"} 3`,
		`cache_ops{op="miss"} 1`,
		`iter_seconds_bucket{phase="discovery",le="1"} 1`,
		`iter_seconds_sum{phase="discovery"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for name, bad := range map[string]string{
		"duplicate series": "m 1\nm 2\n",
		"duplicate type":   "# TYPE m counter\n# TYPE m gauge\nm 1\n",
		"bad name":         "1bad 1\n",
		"bad value":        "m one\n",
		"bad type":         "# TYPE m widget\nm 1\n",
		"empty":            "",
	} {
		if err := ValidateExposition([]byte(bad)); err == nil {
			t.Errorf("%s: accepted %q", name, bad)
		}
	}
	good := "# TYPE m counter\nm 1\nm2{a=\"b\"} 2.5\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}

// TestRuntimeMetricsExposed asserts the Go runtime gauges land in both
// renderings a monitoring stack consumes: the JSON snapshot
// (/v1/metrics) and the Prometheus exposition (/metrics).
func TestRuntimeMetricsExposed(t *testing.T) {
	r := NewRegistry()
	EnableRuntimeMetrics(r)
	snap := r.Snapshot()
	g, ok := snap["go_goroutines"].(float64)
	if !ok || g < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", snap["go_goroutines"])
	}
	if h, ok := snap["go_memstats_heap_alloc_bytes"].(float64); !ok || h <= 0 {
		t.Errorf("go_memstats_heap_alloc_bytes = %v, want > 0", snap["go_memstats_heap_alloc_bytes"])
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_gc_pause_seconds histogram",
		"go_memstats_heap_alloc_bytes",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
