package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve inside the goroutine: get-or-create must be safe
			// under contention too.
			c := r.Counter("test.counter")
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.counter").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.25)
	g.Add(-0.75)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// Uniform 1..1000 observations scaled into (0,10]: quantiles should
	// land near q*10.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5005.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5}, {0.95, 9.5}, {0.99, 9.9},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 0.2 {
			t.Errorf("q%v = %v, want ~%v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	h.Observe(100) // overflow bucket
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want last bound 2", got)
	}
	s := h.Summary()
	if s.Count != 1 || s.Sum != 100 {
		t.Errorf("summary = %+v", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(float64(off+j) * 1e-6)
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Gauge("a.gauge").Set(1.5)
	r.Histogram("c.lat").Observe(0.002)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if decoded["b.count"] != float64(7) {
		t.Errorf("b.count = %v", decoded["b.count"])
	}
	if decoded["a.gauge"] != 1.5 {
		t.Errorf("a.gauge = %v", decoded["a.gauge"])
	}
	hist, ok := decoded["c.lat"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("c.lat = %v", decoded["c.lat"])
	}
	// Keys are emitted sorted.
	if ai, bi := strings.Index(b.String(), "a.gauge"), strings.Index(b.String(), "b.count"); ai > bi {
		t.Errorf("keys not sorted:\n%s", b.String())
	}
}
