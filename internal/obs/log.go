package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a slog.Logger for the given -log-format flag value:
// "text" (human-readable, the default) or "json" (machine-ingestable
// structured lines). Unknown formats are an error so flag typos fail
// loudly instead of silently switching handlers.
func NewLogger(format string, w io.Writer, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
