package obs

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewHistogram([]float64{1, 2, 3})
		for _, q := range []float64{0.01, 0.5, 0.99} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty q%v = %v, want 0", q, got)
			}
		}
	})
	t.Run("single-bucket", func(t *testing.T) {
		h := NewHistogram([]float64{10})
		h.Observe(5)
		h.Observe(5)
		// Both observations are inside [0,10]; interpolation stays there.
		if got := h.Quantile(0.5); got < 0 || got > 10 {
			t.Errorf("q50 = %v, want within [0,10]", got)
		}
		// Overflow ranks clamp to the only bound.
		h.Observe(1e9)
		h.Observe(1e9)
		h.Observe(1e9)
		if got := h.Quantile(0.99); got != 10 {
			t.Errorf("overflow q99 = %v, want 10", got)
		}
	})
	t.Run("inf-bucket", func(t *testing.T) {
		// An explicit trailing +Inf bound is redundant with the implicit
		// overflow bucket: it must not leak +Inf out of Quantile.
		h := NewHistogram([]float64{1, 2, math.Inf(1)})
		h.Observe(0.5)
		h.Observe(100)
		for _, q := range []float64{0.5, 0.99} {
			if got := h.Quantile(q); math.IsInf(got, 0) || got > 2 {
				t.Errorf("q%v = %v, want finite <= last real bound 2", q, got)
			}
		}
		if bounds, _ := h.Buckets(); len(bounds) != 2 {
			t.Errorf("bounds = %v, want trailing +Inf stripped", bounds)
		}
	})
}

// TestVecConcurrentAccess hammers one vector's label map from many
// goroutines resolving overlapping label values; run under -race this
// is the regression test for the map's locking.
func TestVecConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG, values = 16, 500, 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := fmt.Sprintf("v%d", (g+i)%values)
				// Resolve through the registry every time: get-or-create
				// on both the vec and the child must be race-free.
				r.CounterVec("vec.ctr", "k").With(v).Inc()
				r.GaugeVec("vec.gauge", "k").With(v).Set(float64(i))
				r.HistogramVec("vec.hist", "k", nil).With(v).Observe(1e-4)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, s := range r.CounterVec("vec.ctr", "k").v.snapshot() {
		total += s.metric.Value()
	}
	if total != goroutines*perG {
		t.Errorf("counter total = %d, want %d", total, goroutines*perG)
	}
	var hcount int64
	for _, s := range r.HistogramVec("vec.hist", "k", nil).v.snapshot() {
		hcount += s.metric.Count()
	}
	if hcount != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", hcount, goroutines*perG)
	}
}

func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("capped", "k")
	for i := 0; i < MaxLabelValues; i++ {
		cv.With(fmt.Sprintf("v%03d", i)).Inc()
	}
	// Beyond the cap every new value lands on the shared overflow child.
	overflow := cv.With("one-too-many")
	for i := 0; i < 10; i++ {
		if got := cv.With(fmt.Sprintf("extra%d", i)); got != overflow {
			t.Fatalf("extra value %d got its own child past the cap", i)
		}
		got := cv.With(OverflowLabel)
		if got != overflow {
			t.Fatalf("overflow label resolves to a different child")
		}
	}
	// Existing values keep their own children.
	if cv.With("v000") == overflow {
		t.Error("pre-cap value collapsed into overflow")
	}
	kids := cv.v.snapshot()
	if len(kids) != MaxLabelValues+1 {
		t.Errorf("children = %d, want %d (cap + overflow)", len(kids), MaxLabelValues+1)
	}
}

func TestVecLabeledSnapshotKeys(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("ops", "op").With("hit").Add(3)
	r.CounterVec("ops", "op").With("miss").Add(1)
	snap := r.Snapshot()
	if got := snap[`ops{op="hit"}`]; got != int64(3) {
		t.Errorf(`ops{op="hit"} = %v, want 3`, got)
	}
	if got := snap[`ops{op="miss"}`]; got != int64(1) {
		t.Errorf(`ops{op="miss"} = %v, want 1`, got)
	}
}
