package durable

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/obs"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(t.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestAppendAndReplay(t *testing.T) {
	m := newManager(t)
	l, err := m.Create("s1", []byte(`{"seed":42}`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := l.AppendLabel(int64(i), i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs, err := m.Open("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 101 {
		t.Fatalf("replayed %d records, want 101", len(recs))
	}
	if recs[0].Type != RecCreate || string(recs[0].Payload) != `{"seed":42}` {
		t.Errorf("first record = %v %q", recs[0].Type, recs[0].Payload)
	}
	for i, r := range recs[1:] {
		row, rel, err := DecodeLabel(r.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if row != int64(i) || rel != (i%3 == 0) {
			t.Fatalf("label %d = (%d, %v)", i, row, rel)
		}
	}
	// Appends continue after reopen.
	if err := l2.AppendLabel(500, true); err != nil {
		t.Fatal(err)
	}
	recs2, err := ReadLog(filepath.Join(m.Dir(), "s1.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 102 {
		t.Fatalf("after reopen-append: %d records, want 102", len(recs2))
	}
}

func TestTornTailTruncated(t *testing.T) {
	m := newManager(t)
	l, err := m.Create("s1", []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.AppendLabel(int64(i), true); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	path := filepath.Join(m.Dir(), "s1.wal")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-record: simulate a crash during an append.
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	before := obs.GetCounter("aide_wal_torn_tails_total").Value()
	l2, recs, err := m.Open("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 10 { // create + 9 intact labels
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	if obs.GetCounter("aide_wal_torn_tails_total").Value() != before+1 {
		t.Error("torn tail not counted")
	}
	// The log must append cleanly on the repaired frame boundary.
	if err := l2.AppendLabel(99, false); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	recs2, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 11 {
		t.Fatalf("after repair+append: %d records, want 11", len(recs2))
	}
	row, _, _ := DecodeLabel(recs2[10].Payload)
	if row != 99 {
		t.Errorf("appended row = %d", row)
	}
}

func TestCorruptMiddleRecordSkipped(t *testing.T) {
	m := newManager(t)
	l, err := m.Create("s1", []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.AppendLabel(int64(i), true); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a payload byte in the middle of the third label record. The
	// create record is 9(header)+1 bytes; each label is 9+9.
	path := filepath.Join(m.Dir(), "s1.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := (9 + 1) + 2*(9+9) + 9 + 4 // into the 3rd label's payload
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	before := obs.GetCounter("aide_wal_corrupt_records_total").Value()
	l2, recs, err := m.Open("s1")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != 5 { // create + 4 surviving labels
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	if obs.GetCounter("aide_wal_corrupt_records_total").Value() != before+1 {
		t.Error("corrupt record not counted")
	}
	var rows []int64
	for _, r := range recs[1:] {
		row, _, _ := DecodeLabel(r.Payload)
		rows = append(rows, row)
	}
	want := []int64{0, 1, 3, 4}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("surviving rows = %v, want %v", rows, want)
		}
	}
}

func TestShortWriteRepairedByRetry(t *testing.T) {
	m := newManager(t)
	l, err := m.Create("s1", []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	faultinject.Activate(faultinject.New(faultinject.Config{
		Seed:        7,
		PartialRate: 1, // every write to the injected point is cut short
		Points:      []string{"durable.append"},
	}))
	err = l.AppendLabel(1, true)
	faultinject.Deactivate()
	// With PartialRate 1 both the write and its retry are cut short; the
	// log must roll back to a clean frame boundary either way.
	if err == nil {
		t.Fatal("expected append error under 100% short writes")
	}

	// After deactivation the log works and contains no torn garbage.
	if err := l.AppendLabel(2, true); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(filepath.Join(m.Dir(), "s1.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (create + one label)", len(recs))
	}
	row, _, _ := DecodeLabel(recs[1].Payload)
	if row != 2 {
		t.Errorf("surviving label row = %d, want 2", row)
	}
}

func TestCompact(t *testing.T) {
	m := newManager(t)
	l, err := m.Create("s1", []byte("create"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := l.AppendLabel(int64(i), false); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := l.Size()

	// Compact keeping a snapshot and the last two labels.
	var tail []Record
	for i := 48; i < 50; i++ {
		var p [9]byte
		binary.LittleEndian.PutUint64(p[0:8], uint64(i))
		tail = append(tail, Record{Type: RecLabel, Payload: p[:]})
	}
	if err := l.Compact([]byte("create"), []byte("SNAPSHOT"), tail); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= sizeBefore {
		t.Errorf("compaction did not shrink the log: %d >= %d", l.Size(), sizeBefore)
	}
	// The compacted log keeps accepting appends.
	if err := l.AppendLabel(100, true); err != nil {
		t.Fatal(err)
	}
	l.Close()

	recs, err := ReadLog(filepath.Join(m.Dir(), "s1.wal"))
	if err != nil {
		t.Fatal(err)
	}
	// create + snapshot + 2 labels + 1 appended label
	if len(recs) != 5 {
		t.Fatalf("compacted log has %d records, want 5", len(recs))
	}
	if recs[0].Type != RecCreate || recs[1].Type != RecSnapshot {
		t.Errorf("record types = %v %v", recs[0].Type, recs[1].Type)
	}
	if !bytes.Equal(recs[1].Payload, []byte("SNAPSHOT")) {
		t.Error("snapshot payload lost")
	}
	row, rel, _ := DecodeLabel(recs[4].Payload)
	if row != 100 || !rel {
		t.Errorf("post-compact append = (%d, %v)", row, rel)
	}
}

func TestManagerListRemove(t *testing.T) {
	m := newManager(t)
	for _, id := range []string{"b", "a", "c"} {
		l, err := m.Create(id, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
	ids, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("List = %v", ids)
	}
	if err := m.Remove("b"); err != nil {
		t.Fatal(err)
	}
	ids, _ = m.List()
	if len(ids) != 2 {
		t.Fatalf("after Remove: %v", ids)
	}
	// Removing a missing log is not an error (idempotent cleanup).
	if err := m.Remove("zzz"); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidSessionIDs(t *testing.T) {
	m := newManager(t)
	for _, id := range []string{"", "../evil", "a/b", `a\b`} {
		if _, err := m.Create(id, nil); err == nil {
			t.Errorf("Create(%q) should error", id)
		}
		if _, _, err := m.Open(id); err == nil {
			t.Errorf("Open(%q) should error", id)
		}
	}
}

func TestClosedLogErrors(t *testing.T) {
	m := newManager(t)
	l, err := m.Create("s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(RecLabel, nil); err != ErrClosed {
		t.Errorf("Append on closed log = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}

func TestFsyncPolicyParse(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "Interval": FsyncInterval, "NEVER": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy should error")
	}
}
