// Package durable persists exploration sessions across process crashes.
//
// Each session gets one append-only write-ahead log under the data
// directory. Every record is framed as
//
//	[u32 length][u32 crc32-IEEE][u8 type][payload]
//
// where the length counts the type byte plus the payload and the
// checksum covers the same bytes. The frame makes three failure modes
// recoverable:
//
//   - A torn tail (the process died mid-append) is detected by a short
//     or checksum-failing final record and truncated away; everything
//     before it replays normally.
//   - A corrupt record in the middle (bit rot, partial overwrite) fails
//     its checksum; replay skips to the next frame and counts the skip
//     in aide_wal_corrupt_records_total rather than abandoning the
//     whole session.
//   - A short write observed by the writer itself is repaired in place:
//     Append truncates back to the last known-good offset and retries
//     once.
//
// Logs record the session's creation parameters and every label the
// user provides, so replaying the log through a deterministic session
// reproduces the exact exploration state (sessions are pure functions
// of seed + labels). Periodic snapshot records bound replay cost:
// Compact rewrites the log as create + snapshot + labels via an
// atomic rename.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/explore-by-example/aide/internal/faultinject"
	"github.com/explore-by-example/aide/internal/obs"
)

// Record types. The WAL format is append-only versioned: new types may
// be added, old ones never renumbered.
const (
	// RecCreate carries the session's creation parameters (JSON); it is
	// always the first record of a log.
	RecCreate byte = 1
	// RecLabel carries one user label: 8-byte little-endian row index
	// followed by one relevance byte.
	RecLabel byte = 2
	// RecSnapshot carries an explore.Session snapshot (opaque bytes).
	// Replay may start from the latest snapshot instead of the label
	// stream; labels after it still apply.
	RecSnapshot byte = 3
)

// FsyncPolicy controls when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged label is
	// ever lost, at the cost of one fsync per label.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per SyncEvery window; a crash
	// can lose the tail of that window.
	FsyncInterval
	// FsyncNever leaves syncing to the OS. Fastest, weakest.
	FsyncNever
)

// ParseFsyncPolicy maps flag values to policies.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or never)", s)
	}
}

const (
	headerSize = 9 // u32 length + u32 crc + u8 type
	// maxRecordSize bounds a single record so a corrupt length field
	// cannot make replay allocate gigabytes.
	maxRecordSize = 64 << 20
)

var (
	obsWALAppends        = obs.GetCounter("aide_wal_appends_total")
	obsWALAppendRetries  = obs.GetCounter("aide_wal_append_retries_total")
	obsWALCorruptRecords = obs.GetCounter("aide_wal_corrupt_records_total")
	obsWALTornTails      = obs.GetCounter("aide_wal_torn_tails_total")
	obsWALReplays        = obs.GetCounter("aide_wal_replays_total")
	obsWALCompactions    = obs.GetCounter("aide_wal_compactions_total")
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("durable: log closed")

// Record is one decoded WAL entry.
type Record struct {
	Type    byte
	Payload []byte
}

// Log is one session's write-ahead log. Safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	good     int64 // offset after the last fully written record
	policy   FsyncPolicy
	every    time.Duration
	lastSync time.Time
	closed   bool
}

// Options tunes a Manager.
type Options struct {
	// Fsync is the append durability policy.
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval window (default 100ms).
	SyncEvery time.Duration
}

// Manager owns the data directory and hands out per-session logs.
type Manager struct {
	dir  string
	opts Options

	mu   sync.Mutex
	logs map[string]*Log
}

// NewManager opens (creating if needed) the data directory.
func NewManager(dir string, opts Options) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("durable: empty data directory")
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating data dir: %w", err)
	}
	return &Manager{dir: dir, opts: opts, logs: make(map[string]*Log)}, nil
}

// Dir returns the managed data directory.
func (m *Manager) Dir() string { return m.dir }

func (m *Manager) logPath(id string) string {
	return filepath.Join(m.dir, id+".wal")
}

// validID rejects session IDs that could escape the data directory.
func validID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return fmt.Errorf("durable: invalid session id %q", id)
	}
	return nil
}

// Create opens a fresh log for the session and writes its create
// record. An existing log for the same id is truncated: the caller has
// decided the session starts over.
func (m *Manager) Create(id string, createPayload []byte) (*Log, error) {
	if err := validID(id); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(m.logPath(id), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: creating log: %w", err)
	}
	l := &Log{f: f, path: m.logPath(id), policy: m.opts.Fsync, every: m.opts.SyncEvery}
	if err := l.Append(RecCreate, createPayload); err != nil {
		l.Close()
		return nil, err
	}
	m.mu.Lock()
	m.logs[id] = l
	m.mu.Unlock()
	return l, nil
}

// Open opens an existing session log for appending, repairing a torn
// tail first. It returns the replayable records alongside the log.
func (m *Manager) Open(id string) (*Log, []Record, error) {
	if err := validID(id); err != nil {
		return nil, nil, err
	}
	path := m.logPath(id)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: opening log: %w", err)
	}
	recs, good, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		// Torn tail from a crash mid-append: cut it off so the next
		// append starts on a frame boundary.
		obsWALTornTails.Inc()
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{f: f, path: path, good: good, policy: m.opts.Fsync, every: m.opts.SyncEvery}
	m.mu.Lock()
	m.logs[id] = l
	m.mu.Unlock()
	return l, recs, nil
}

// List returns the session IDs that have a log in the data directory.
func (m *Manager) List() ([]string, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("durable: listing data dir: %w", err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".wal") {
			ids = append(ids, strings.TrimSuffix(name, ".wal"))
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// Remove closes and deletes the session's log (session ended cleanly
// or was expired by the janitor).
func (m *Manager) Remove(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	m.mu.Lock()
	if l, ok := m.logs[id]; ok {
		l.Close()
		delete(m.logs, id)
	}
	m.mu.Unlock()
	if err := os.Remove(m.logPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: removing log: %w", err)
	}
	return nil
}

// Close closes every open log.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for id, l := range m.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
		delete(m.logs, id)
	}
	return first
}

// frame encodes one record into a fresh buffer.
func frame(typ byte, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(1+len(payload)))
	buf[8] = typ
	copy(buf[headerSize:], payload)
	crc := crc32.ChecksumIEEE(buf[8:])
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return buf
}

// Append writes one record and applies the fsync policy. A short write
// (including an injected one) is repaired by truncating back to the
// last good offset and retrying once.
func (l *Log) Append(typ byte, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	buf := frame(typ, payload)
	if err := l.writeLocked(buf); err != nil {
		obsWALAppendRetries.Inc()
		// Roll back to the frame boundary and retry once: transient
		// short writes (ENOSPC races, injected faults) must not leave
		// a torn record in the middle of a live log.
		if terr := l.rollbackLocked(); terr != nil {
			return fmt.Errorf("durable: append failed (%v) and rollback failed: %w", err, terr)
		}
		if err := l.writeLocked(buf); err != nil {
			if terr := l.rollbackLocked(); terr != nil {
				return fmt.Errorf("durable: append retry failed (%v) and rollback failed: %w", err, terr)
			}
			return fmt.Errorf("durable: append: %w", err)
		}
	}
	l.good += int64(len(buf))
	obsWALAppends.Inc()
	return l.maybeSyncLocked()
}

func (l *Log) writeLocked(buf []byte) error {
	n := len(buf)
	if k, injected := faultinject.ShortWrite("durable.append", n); injected {
		if k > 0 {
			if _, err := l.f.Write(buf[:k]); err != nil {
				return err
			}
		}
		return fmt.Errorf("short write: %d of %d bytes", k, n)
	}
	wrote, err := l.f.Write(buf)
	if err != nil {
		return err
	}
	if wrote != n {
		return fmt.Errorf("short write: %d of %d bytes", wrote, n)
	}
	return nil
}

func (l *Log) rollbackLocked() error {
	if err := l.f.Truncate(l.good); err != nil {
		return err
	}
	_, err := l.f.Seek(l.good, io.SeekStart)
	return err
}

func (l *Log) maybeSyncLocked() error {
	switch l.policy {
	case FsyncAlways:
		return l.f.Sync()
	case FsyncInterval:
		now := time.Now()
		if now.Sub(l.lastSync) >= l.every {
			l.lastSync = now
			return l.f.Sync()
		}
	}
	return nil
}

// Sync forces the log to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.f.Sync()
}

// Size returns the durable (frame-aligned) size of the log in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.good
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.policy != FsyncNever {
		l.f.Sync()
	}
	return l.f.Close()
}

// AppendLabel is a convenience wrapper encoding a label record.
func (l *Log) AppendLabel(row int64, relevant bool) error {
	var p [9]byte
	binary.LittleEndian.PutUint64(p[0:8], uint64(row))
	if relevant {
		p[8] = 1
	}
	return l.Append(RecLabel, p[:])
}

// DecodeLabel unpacks a RecLabel payload.
func DecodeLabel(payload []byte) (row int64, relevant bool, err error) {
	if len(payload) != 9 {
		return 0, false, fmt.Errorf("durable: label payload is %d bytes, want 9", len(payload))
	}
	return int64(binary.LittleEndian.Uint64(payload[0:8])), payload[8] == 1, nil
}

// Compact atomically rewrites the log as the create record, an optional
// snapshot, and the labels that must still replay after that snapshot.
// The live log keeps appending to the compacted file afterwards.
func (l *Log) Compact(create []byte, snapshot []byte, labels []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: compact: %w", err)
	}
	var off int64
	write := func(typ byte, payload []byte) {
		if err != nil {
			return
		}
		buf := frame(typ, payload)
		_, err = nf.Write(buf)
		off += int64(len(buf))
	}
	write(RecCreate, create)
	if snapshot != nil {
		write(RecSnapshot, snapshot)
	}
	for _, r := range labels {
		if r.Type != RecLabel {
			continue
		}
		write(RecLabel, r.Payload)
	}
	if err == nil {
		err = nf.Sync()
	}
	if cerr := nf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: compact: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: compact rename: %w", err)
	}
	// Swap the file handle to the compacted log.
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: reopening compacted log: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	old := l.f
	l.f = f
	l.good = off
	old.Close()
	obsWALCompactions.Inc()
	return nil
}

// scan reads records from the start of f, returning the decoded records
// and the offset just past the last valid one. Mid-log corruption skips
// the record; an undecodable tail ends the scan (the caller truncates).
func scan(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var (
		recs   []Record
		offset int64
		header [headerSize]byte
	)
	good := int64(0)
	for {
		_, err := io.ReadFull(f, header[:])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break // clean end, or a torn header at the tail
		}
		if err != nil {
			return nil, 0, fmt.Errorf("durable: reading log: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordSize {
			// Garbage length: cannot even resynchronize reliably. Treat
			// as tail corruption and stop here.
			obsWALCorruptRecords.Inc()
			break
		}
		payload := make([]byte, length-1)
		if _, err := io.ReadFull(f, payload); err != nil {
			// Torn payload at the tail.
			break
		}
		full := make([]byte, 1+len(payload))
		full[0] = header[8]
		copy(full[1:], payload)
		offset += int64(headerSize) + int64(length) - 1
		if crc32.ChecksumIEEE(full) != wantCRC {
			// Mid-log corruption: the frame is intact (length made
			// sense) but the bytes are damaged. Skip this record, keep
			// replaying — losing one label beats losing the session.
			obsWALCorruptRecords.Inc()
			good = offset
			continue
		}
		recs = append(recs, Record{Type: header[8], Payload: payload})
		good = offset
	}
	obsWALReplays.Inc()
	return recs, good, nil
}

// ReadLog scans a log file read-only without opening it for append —
// used by recovery checks and tests.
func ReadLog(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, _, err := scan(f)
	return recs, err
}
