// Package aide is a Go implementation of AIDE — the Automatic Interactive
// Data Exploration framework of Dimitriadou, Papaemmanouil and Diao,
// "Explore-by-Example: An Automatic Query Steering Framework for
// Interactive Data Exploration" (SIGMOD 2014).
//
// AIDE steers a user through a d-dimensional data space: each iteration
// it strategically extracts a handful of sample tuples, asks the user to
// mark each relevant or irrelevant, trains a decision-tree model of the
// user's interest, and finally "predicts" the query — a disjunction of
// range predicates — that retrieves the user's relevant objects. Three
// sample-selection phases drive convergence: relevant object discovery
// over a hierarchical grid (or k-means cluster hierarchy for skewed
// spaces), misclassified-sample exploitation, and boundary exploitation
// of the predicted relevant areas.
//
// # Quick start
//
//	tab := aide.GenerateSDSS(100_000, 1)                   // or build your own Table
//	view, _ := aide.NewView(tab, []string{"rowc", "colc"}) // pick exploration attributes
//	oracle := aide.OracleFunc(func(v *aide.View, row int) bool {
//		return myUserFindsInteresting(v.FullRow(row))
//	})
//	session, _ := aide.NewSession(view, oracle, aide.DefaultOptions())
//	for i := 0; i < 30; i++ {
//		if _, err := session.RunIteration(); err != nil {
//			break
//		}
//	}
//	fmt.Println(session.FinalQuery().SQL())
//
// The package re-exports the supported surface of the internal
// subsystems: the dataset layer (column-major tables and synthetic
// generators), the query engine (indexed views, region sampling, sampled
// datasets), the exploration core (sessions, options, baselines) and the
// evaluation harness (targets, simulated users, F-measure).
package aide

import (
	"io"
	"net/http"

	"github.com/explore-by-example/aide/internal/cart"
	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/eval"
	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/service"
)

// Geometry primitives.
type (
	// Point is a location in the exploration space.
	Point = geom.Point
	// Interval is a closed numeric range.
	Interval = geom.Interval
	// Rect is an axis-aligned hyper-rectangle, one Interval per dimension.
	Rect = geom.Rect
	// Normalizer maps raw attribute values to the canonical [0,100] space.
	Normalizer = geom.Normalizer
)

// Dataset layer.
type (
	// Table is an immutable, column-major in-memory table.
	Table = dataset.Table
	// Schema describes a table's columns and their value domains.
	Schema = dataset.Schema
	// Column is one schema entry.
	Column = dataset.Column
	// Builder accumulates rows into a Table.
	Builder = dataset.Builder
	// ClusterSpec parameterizes GenerateClusters.
	ClusterSpec = dataset.ClusterSpec
)

// Query engine.
type (
	// View is an indexed projection of a Table onto the exploration
	// attributes; all exploration runs against a View.
	View = engine.View
	// Query is a disjunction of conjunctive range predicates — AIDE's
	// final output.
	Query = engine.Query
	// ViewRegistry shares immutable views (and their indexes) across
	// sessions and servers, keyed by data content.
	ViewRegistry = engine.Registry
	// Cache is a bounded predicate-result cache attachable to a View;
	// cached results are bit-identical to uncached ones.
	Cache = engine.Cache
	// CacheStats reports a Cache's hit/miss/eviction counters.
	CacheStats = engine.CacheStats
)

// Exploration core.
type (
	// Session is an AIDE steering session.
	Session = explore.Session
	// SessionStats aggregates a session's effort and timing.
	SessionStats = explore.SessionStats
	// Options tunes every knob of a session.
	Options = explore.Options
	// Oracle supplies relevance labels (the human in the loop).
	Oracle = explore.Oracle
	// OracleFunc adapts a plain function to Oracle.
	OracleFunc = explore.OracleFunc
	// Explorer is the common interface of Session and the baselines.
	Explorer = explore.Explorer
	// IterationResult summarizes one steering iteration.
	IterationResult = explore.IterationResult
	// AreaInfo is per-predicted-area evidence (support, violations,
	// selectivity) from Session.Diagnostics.
	AreaInfo = explore.AreaInfo
	// Phase identifies an exploration phase.
	Phase = explore.Phase
	// DiscoveryStrategy selects grid, clustering, or hybrid discovery.
	DiscoveryStrategy = explore.DiscoveryStrategy
	// MisclassStrategy selects clustered or per-object misclassified
	// exploitation.
	MisclassStrategy = explore.MisclassStrategy
	// Random is the uniform-sampling baseline.
	Random = explore.Random
	// RandomGrid is the grid-spread random baseline.
	RandomGrid = explore.RandomGrid
	// Budget caps a session's resource use; exceeding a cap triggers a
	// reported degradation instead of a failure.
	Budget = explore.Budget
	// ConflictPolicy selects how contradictory labels for the same tuple
	// are resolved.
	ConflictPolicy = explore.ConflictPolicy
	// ConflictStats summarizes the contradictions a session has seen.
	ConflictStats = explore.ConflictStats
	// ConflictError reports a contradiction under the strict policy.
	ConflictError = explore.ConflictError
	// NoisyOracle wraps an Oracle and flips answers at a seeded rate, for
	// testing noise tolerance.
	NoisyOracle = explore.NoisyOracle
	// DecisionTree is the CART classifier modeling user interest.
	DecisionTree = cart.Tree
	// TreeParams tunes decision-tree induction.
	TreeParams = cart.Params
)

// Evaluation harness.
type (
	// Target is a ground-truth user interest (a set of relevant areas).
	Target = eval.Target
	// TargetSpec parameterizes target-query generation.
	TargetSpec = eval.TargetSpec
	// SizeClass is the paper's small/medium/large area sizing.
	SizeClass = eval.SizeClass
	// Metrics is precision/recall/F-measure over the full data space.
	Metrics = eval.Metrics
	// Evaluator computes Metrics against one fixed target.
	Evaluator = eval.Evaluator
	// SimulatedUser labels samples from a ground-truth target.
	SimulatedUser = eval.SimulatedUser
	// Trace is a per-iteration accuracy record.
	Trace = eval.Trace
	// ManualResult summarizes a scripted manual-exploration session.
	ManualResult = eval.ManualResult
	// ManualParams tunes the scripted manual explorer.
	ManualParams = eval.ManualParams
)

// HTTP exploration service (the middleware role of the paper's system
// architecture). Run the server with cmd/aideserver or embed it in any
// http mux; drive it with ServiceClient.
type (
	// ServiceServer serves explore-by-example sessions over HTTP+JSON.
	ServiceServer = service.Server
	// ServiceClient is the matching Go client.
	ServiceClient = service.Client
	// CreateSessionRequest configures a remote session.
	CreateSessionRequest = service.CreateSessionRequest
	// ServiceSample is one tuple awaiting a label from a remote user.
	ServiceSample = service.Sample
)

// ErrSessionDone is returned by ServiceClient.NextSample when a remote
// session has finished.
var ErrSessionDone = service.ErrSessionDone

// Observability: the process-wide metrics registry and per-session
// iteration tracing (attach a TraceRecorder with Session.SetRecorder).
type (
	// MetricsRegistry holds named counters, gauges and latency histograms.
	MetricsRegistry = obs.Registry
	// TraceRecorder keeps a bounded ring of per-iteration trace trees.
	TraceRecorder = obs.Recorder
	// SpanData is one finished span in JSON-ready form.
	SpanData = obs.SpanData
)

// DefaultMetrics returns the process-wide registry every instrumented
// layer (engine, explore, service) reports into.
func DefaultMetrics() *MetricsRegistry { return obs.Default }

// NewTraceRecorder creates a recorder keeping the last capacity
// iteration traces (<= 0: 64).
func NewTraceRecorder(capacity int) *TraceRecorder { return obs.NewRecorder(capacity) }

// NewServiceServer creates an HTTP exploration server over named views.
func NewServiceServer(views map[string]*View) *ServiceServer {
	return service.NewServer(views)
}

// NewServiceClient creates a client for a server at baseURL; httpClient
// may be nil.
func NewServiceClient(baseURL string, httpClient *http.Client) *ServiceClient {
	return service.NewClient(baseURL, httpClient)
}

// Exploration phases.
const (
	PhaseDiscovery = explore.PhaseDiscovery
	PhaseMisclass  = explore.PhaseMisclass
	PhaseBoundary  = explore.PhaseBoundary
)

// Discovery strategies.
const (
	DiscoveryGrid       = explore.DiscoveryGrid
	DiscoveryClustering = explore.DiscoveryClustering
	DiscoveryHybrid     = explore.DiscoveryHybrid
)

// Misclassified-exploitation strategies.
const (
	MisclassClustered = explore.MisclassClustered
	MisclassPerObject = explore.MisclassPerObject
)

// Label-conflict resolution policies.
const (
	ConflictLastWins = explore.ConflictLastWins
	ConflictMajority = explore.ConflictMajority
	ConflictStrict   = explore.ConflictStrict
)

// ParseConflictPolicy parses "last-wins", "majority" or "strict" ("" =
// last-wins).
func ParseConflictPolicy(s string) (ConflictPolicy, error) {
	return explore.ParseConflictPolicy(s)
}

// NewNoisyOracle wraps inner so each answer flips with probability rate
// (clamped to [0,1]), deterministically for a given seed.
func NewNoisyOracle(inner Oracle, rate float64, seed int64) *NoisyOracle {
	return explore.NewNoisyOracle(inner, rate, seed)
}

// Relevant-area size classes.
const (
	Small  = eval.Small
	Medium = eval.Medium
	Large  = eval.Large
)

// NewTable constructs a table from column-major data; see dataset.NewTable.
func NewTable(name string, schema Schema, cols [][]float64) (*Table, error) {
	return dataset.NewTable(name, schema, cols)
}

// NewBuilder creates a row-at-a-time table builder.
func NewBuilder(name string, schema Schema) *Builder {
	return dataset.NewBuilder(name, schema)
}

// GenerateSDSS builds the synthetic Sloan Digital Sky Survey PhotoObjAll
// table used throughout the paper's evaluation (Section 6.1): uniform
// rowc/colc, skewed ra/dec/field/fieldID.
func GenerateSDSS(n int, seed int64) *Table { return dataset.GenerateSDSS(n, seed) }

// SDSSSchema returns the synthetic PhotoObjAll schema.
func SDSSSchema() Schema { return dataset.SDSSSchema() }

// GenerateAuction builds the synthetic AuctionMark ITEM table of the user
// study (Section 6.5).
func GenerateAuction(n int, seed int64) *Table { return dataset.GenerateAuction(n, seed) }

// AuctionSchema returns the synthetic ITEM schema.
func AuctionSchema() Schema { return dataset.AuctionSchema() }

// GenerateUniform builds a d-attribute uniform table over [0,100]^d.
func GenerateUniform(n, d int, seed int64) *Table { return dataset.GenerateUniform(n, d, seed) }

// GenerateClusters builds a Gaussian-mixture table (skewed spaces).
func GenerateClusters(n, d int, specs []ClusterSpec, background float64, seed int64) *Table {
	return dataset.GenerateClusters(n, d, specs, background, seed)
}

// NewView builds an indexed exploration view over the named attributes.
// Index construction and subsequent scans use the automatic worker count
// (the AIDE_WORKERS environment variable, else GOMAXPROCS).
func NewView(tab *Table, attrs []string) (*View, error) { return engine.NewView(tab, attrs) }

// NewViewWorkers is NewView with an explicit worker count for index
// construction and scans: 0 means automatic, 1 forces the sequential
// path. The built view and every query result are identical at any
// worker count; see the "Concurrency & performance" section of README.md.
func NewViewWorkers(tab *Table, attrs []string, workers int) (*View, error) {
	return engine.NewViewWorkers(tab, attrs, workers)
}

// SharedViews is the process-wide view registry: Acquire through it (or
// through ServiceServer.RegisterTable) and sessions over the same data
// share one set of covering indexes.
var SharedViews = engine.SharedViews

// NewViewRegistry creates an empty, independent view registry.
func NewViewRegistry() *ViewRegistry { return engine.NewRegistry() }

// NewCache creates a predicate-result cache of roughly maxBytes; attach
// it with View.WithCache. Cached Count/RowsIn results are bit-identical
// to uncached ones (sampling is never cached).
func NewCache(maxBytes int64) *Cache { return engine.NewCache(maxBytes) }

// DefaultOptions returns the configuration matching the paper's
// evaluation setup.
func DefaultOptions() Options { return explore.DefaultOptions() }

// NewSession starts an AIDE exploration session.
func NewSession(view *View, oracle Oracle, opts Options) (*Session, error) {
	return explore.NewSession(view, oracle, opts)
}

// ResumeSession reconstructs a session previously written with
// Session.Save. The view must match the one the session was saved from;
// already-recorded labels are not re-requested from the oracle.
func ResumeSession(r io.Reader, view *View, oracle Oracle) (*Session, error) {
	return explore.Resume(r, view, oracle)
}

// NewRandom builds the Random baseline explorer of Section 6.2.
func NewRandom(view *View, oracle Oracle, perIter int, seed int64) (*Random, error) {
	return explore.NewRandom(view, oracle, perIter, seed)
}

// NewRandomGrid builds the Random-Grid baseline explorer of Section 6.2.
func NewRandomGrid(view *View, oracle Oracle, perIter, beta0 int, seed int64) (*RandomGrid, error) {
	return explore.NewRandomGrid(view, oracle, perIter, beta0, seed)
}

// RunUntil drives an explorer until stop returns true or maxIter
// iterations elapse.
func RunUntil(e Explorer, stop func(*IterationResult) bool, maxIter int) ([]*IterationResult, error) {
	return explore.RunUntil(e, stop, maxIter)
}

// GenerateTarget places ground-truth relevant areas for evaluation
// workloads.
func GenerateTarget(v *View, spec TargetSpec, seed int64) (Target, error) {
	return eval.GenerateTarget(v, spec, seed)
}

// NewEvaluator precomputes the target mask for repeated F-measure
// evaluation.
func NewEvaluator(v *View, target []Rect) (*Evaluator, error) {
	return eval.NewEvaluator(v, target)
}

// NewSimulatedUser builds an oracle that labels against a ground-truth
// target.
func NewSimulatedUser(target Target) *SimulatedUser { return eval.NewSimulatedUser(target) }

// RunTrace drives an explorer to a target accuracy, recording the
// per-iteration accuracy curve.
func RunTrace(e Explorer, evalView *View, target Target, stopF float64, maxIter int) (Trace, error) {
	return eval.RunTrace(e, evalView, target, stopF, maxIter)
}

// SimulateManual runs the scripted manual-exploration baseline of the
// user study.
func SimulateManual(v *View, target Target, params ManualParams, seed int64) ManualResult {
	return eval.SimulateManual(v, target, params, seed)
}

// ParseQuery parses the SELECT dialect Query.SQL emits back into a
// Query, so predicted queries can be stored as text and re-executed.
// attrs fixes dimension order; domains fills attributes a disjunct omits
// (may be nil when every disjunct constrains every attribute).
func ParseQuery(sql string, attrs []string, domains Rect) (Query, error) {
	return engine.ParseQuery(sql, attrs, domains)
}

// R builds a Rect from (lo, hi) pairs: R(0,10, 20,30) is [0,10]x[20,30].
func R(pairs ...float64) Rect { return geom.R(pairs...) }

// FullDomain returns the d-dimensional rectangle covering the whole
// normalized [0,100]^d exploration space.
func FullDomain(d int) Rect { return geom.NewRect(d) }
