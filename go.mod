module github.com/explore-by-example/aide

go 1.22
