package aide_test

import (
	"fmt"
	"log"

	aide "github.com/explore-by-example/aide"
)

// Example demonstrates the full explore-by-example loop: a simulated user
// with a hidden rectangular interest labels the samples AIDE picks, and
// AIDE converges to a query predicting that interest.
func Example() {
	table := aide.GenerateSDSS(50_000, 1)
	view, err := aide.NewView(table, []string{"rowc", "colc"})
	if err != nil {
		log.Fatal(err)
	}

	hidden := aide.R(400, 520, 900, 1060) // the interest AIDE must discover
	oracle := aide.OracleFunc(func(v *aide.View, row int) bool {
		return hidden.Contains(v.RawPoint(row))
	})

	session, err := aide.NewSession(view, oracle, aide.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := aide.RunUntil(session, func(r *aide.IterationResult) bool {
		return r.TotalLabeled >= 600
	}, 60); err != nil {
		log.Fatal(err)
	}

	// Compare the prediction against the hidden truth.
	ev, err := aide.NewEvaluator(view, []aide.Rect{view.Normalizer().ToNormRect(hidden)})
	if err != nil {
		log.Fatal(err)
	}
	m := ev.Measure(session.RelevantAreas())
	fmt.Println("predicted areas:", len(session.RelevantAreas()))
	fmt.Println("F-measure above 0.7:", m.F > 0.7)
	// Output:
	// predicted areas: 1
	// F-measure above 0.7: true
}

// ExampleQuery_SQL shows how a predicted query renders as SQL, including
// the elimination of attributes whose predicate spans the whole domain.
func ExampleQuery_SQL() {
	q := aide.Query{
		Table:   "trials",
		Attrs:   []string{"age", "dosage"},
		Areas:   []aide.Rect{aide.R(20, 40, 0, 10), aide.R(0, 20, 10, 15)},
		Domains: aide.R(0, 100, 0, 15),
	}
	fmt.Println(q.SQL())
	// Output:
	// SELECT * FROM trials WHERE (age >= 20 AND age <= 40 AND dosage >= 0 AND dosage <= 10) OR (age >= 0 AND age <= 20 AND dosage >= 10 AND dosage <= 15);
}

// ExampleGenerateTarget builds an evaluation workload the way the
// benchmark harness does: ground-truth relevant areas of a given size
// class, plus a simulated user that labels against them.
func ExampleGenerateTarget() {
	table := aide.GenerateUniform(20_000, 2, 7)
	view, err := aide.NewView(table, []string{"a0", "a1"})
	if err != nil {
		log.Fatal(err)
	}
	target, err := aide.GenerateTarget(view, aide.TargetSpec{
		NumAreas: 3,
		Size:     aide.Large, // 7-9% of each attribute's domain
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("areas:", len(target.Areas))
	user := aide.NewSimulatedUser(target)
	_ = user // hand it to aide.NewSession as the oracle
	// Output:
	// areas: 3
}
