// Skysurvey: the astronomy scenario from the paper's introduction. A
// scientist cannot express their interest precisely but recognizes
// interesting sky objects on sight; their interest spans several
// disjoint regions (a disjunctive query), and the exploration space
// includes attributes irrelevant to it. AIDE must find every region,
// drop the irrelevant attributes, and stay interactive.
package main

import (
	"fmt"
	"log"

	aide "github.com/explore-by-example/aide"
)

func main() {
	// A larger survey table, explored over four attributes. Only ra/dec
	// actually matter to this scientist; rowc and field are noise
	// dimensions AIDE should eliminate from the final query.
	table := aide.GenerateSDSS(300_000, 42)
	view, err := aide.NewView(table, []string{"ra", "dec", "rowc", "field"})
	if err != nil {
		log.Fatal(err)
	}

	// The scientist's (hidden) interest: three separate sky regions,
	// e.g. fields around three survey stripes. Ranges are in raw
	// coordinates: ra in degrees [0,360], dec in degrees [-25,85].
	regions := []aide.Rect{
		aide.R(115, 132, 18, 32, 0, 1489, 0, 1000),
		aide.R(178, 195, 30, 44, 0, 1489, 0, 1000),
		aide.R(213, 230, 5, 19, 0, 1489, 0, 1000),
	}
	oracle := aide.OracleFunc(func(v *aide.View, row int) bool {
		p := v.RawPoint(row)
		for _, r := range regions {
			if r.Contains(p) {
				return true
			}
		}
		return false
	})

	// The scientist knows each interesting region spans at least ~4% of
	// the sky coordinates — a distance hint that lets discovery start at
	// the right grid granularity (Section 3.1 of the paper).
	opts := aide.DefaultOptions()
	opts.DistanceHint = 4
	opts.Seed = 7

	session, err := aide.NewSession(view, oracle, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("steering toward a 3-region disjunctive interest in 4-D space...")
	results, err := aide.RunUntil(session, func(r *aide.IterationResult) bool {
		return r.TotalLabeled >= 1500
	}, 120)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		if i%10 == 0 || i == len(results)-1 {
			fmt.Printf("  iter %3d: %4d labeled, %d predicted area(s), wait %s\n",
				r.Iteration, r.TotalLabeled, r.RelevantAreas, r.Duration.Round(1e6))
		}
	}

	q := session.FinalQuery()
	fmt.Println("\npredicted query:")
	fmt.Println(" ", q.SQL())

	// Accuracy against the hidden regions.
	norm := view.Normalizer()
	truth := make([]aide.Rect, len(regions))
	for i, r := range regions {
		truth[i] = norm.ToNormRect(r)
	}
	ev, err := aide.NewEvaluator(view, truth)
	if err != nil {
		log.Fatal(err)
	}
	m := ev.Measure(session.RelevantAreas())
	fmt.Printf("\nF-measure %.3f over %d rows (%d relevant)\n", m.F, view.NumRows(), ev.TargetCount())
	fmt.Printf("predicted %d area(s) for %d true regions\n", len(session.RelevantAreas()), len(regions))

	// Did AIDE drop the irrelevant attributes? The rendered SQL should
	// constrain ra/dec only.
	fmt.Println("\n(the rowc and field attributes are unconstrained in the query above —")
	fmt.Println(" AIDE identified them as irrelevant to the interest)")
}
