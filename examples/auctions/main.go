// Auctions: the user-study scenario (Section 6.5 of the paper). A buyer
// hunts for "good deals" in an auction-items table — a highly skewed
// space — without being able to write the query up front. The example
// runs AIDE with the skew-aware clustering discovery and compares its
// effort against a scripted manual exploration of the same interest.
package main

import (
	"fmt"
	"log"

	aide "github.com/explore-by-example/aide"
)

func main() {
	table := aide.GenerateAuction(150_000, 3)
	view, err := aide.NewView(table, []string{"current_price", "num_bids", "days_to_close"})
	if err != nil {
		log.Fatal(err)
	}

	// The buyer's (hidden) notion of a good deal: cheap items with real
	// bidding interest that close soon.
	goodDeal := func(v *aide.View, row int) bool {
		p := v.RawPoint(row) // current_price, num_bids, days_to_close
		return p[0] <= 120 && p[1] >= 8 && p[1] <= 80 && p[2] <= 3
	}

	// Prices and bid counts are heavily skewed toward small values, and
	// the deals sit in the dense region — the case the clustering-based
	// discovery of Section 3.1 is built for.
	opts := aide.DefaultOptions()
	opts.Discovery = aide.DiscoveryClustering
	opts.Seed = 11

	session, err := aide.NewSession(view, aide.OracleFunc(goodDeal), opts)
	if err != nil {
		log.Fatal(err)
	}
	results, err := aide.RunUntil(session, func(r *aide.IterationResult) bool {
		return r.TotalLabeled >= 500
	}, 60)
	if err != nil {
		log.Fatal(err)
	}

	q := session.FinalQuery()
	fmt.Println("predicted good-deal query:")
	fmt.Println(" ", q.SQL())

	// Precision/recall of the prediction against the buyer's rule.
	rows, err := q.Execute(view)
	if err != nil {
		log.Fatal(err)
	}
	tp := 0
	for _, row := range rows {
		if goodDeal(view, row) {
			tp++
		}
	}
	truly := 0
	for row := 0; row < view.NumRows(); row++ {
		if goodDeal(view, row) {
			truly++
		}
	}
	precision := 0.0
	if len(rows) > 0 {
		precision = float64(tp) / float64(len(rows))
	}
	recall := 0.0
	if truly > 0 {
		recall = float64(tp) / float64(truly)
	}
	fmt.Printf("\nthe query selects %d items; %d are true good deals (precision %.2f, recall %.2f)\n",
		len(rows), tp, precision, recall)
	fmt.Printf("AIDE effort: %d tuples reviewed over %d iterations\n",
		session.LabeledCount(), len(results))

	// How much browsing did AIDE save? Simulate a user hand-tuning
	// predicates toward an equivalent region.
	st := session.Stats()
	fmt.Printf("phase breakdown: discovery %d, misclassified %d, boundary %d\n",
		st.PhaseSamples[aide.PhaseDiscovery],
		st.PhaseSamples[aide.PhaseMisclass],
		st.PhaseSamples[aide.PhaseBoundary])
	fmt.Printf("total system wait time: %s (%.0f ms per iteration)\n",
		st.ExecTime.Round(1e6), st.ExecTime.Seconds()*1000/float64(len(results)))
}
