// Quickstart: steer AIDE toward a hidden range query in a few dozen
// lines. A simulated user knows the (hidden) interest — sky objects in a
// particular patch of the CCD frame — and AIDE must predict the query
// selecting it from yes/no feedback alone.
package main

import (
	"fmt"
	"log"

	aide "github.com/explore-by-example/aide"
)

func main() {
	// 1. Data: a synthetic Sloan Digital Sky Survey table, explored on
	//    the two CCD coordinates.
	table := aide.GenerateSDSS(100_000, 1)
	view, err := aide.NewView(table, []string{"rowc", "colc"})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The hidden user interest: one rectangular region (a conjunctive
	//    range query). The oracle only answers relevant/irrelevant.
	hidden := aide.R(
		400, 520, // rowc in [400, 520]
		900, 1060, // colc in [900, 1060]
	)
	oracle := aide.OracleFunc(func(v *aide.View, row int) bool {
		return hidden.Contains(v.RawPoint(row))
	})

	// 3. Steer. Each iteration labels up to 20 strategically chosen
	//    samples (the paper's protocol).
	session, err := aide.NewSession(view, oracle, aide.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	results, err := aide.RunUntil(session, func(r *aide.IterationResult) bool {
		return r.TotalLabeled >= 400 // invest up to 400 labels
	}, 50)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The prediction: a SQL query selecting the user's relevant area.
	last := results[len(results)-1]
	fmt.Printf("labeled %d samples over %d iterations\n", last.TotalLabeled, len(results))
	fmt.Println("predicted query:")
	fmt.Println(" ", session.FinalQuery().SQL())

	// 5. How good is it? Compare against the hidden truth.
	norm := view.Normalizer()
	ev, err := aide.NewEvaluator(view, []aide.Rect{norm.ToNormRect(hidden)})
	if err != nil {
		log.Fatal(err)
	}
	m := ev.Measure(session.RelevantAreas())
	fmt.Printf("accuracy: F-measure %.3f (precision %.3f, recall %.3f)\n",
		m.F, m.Precision, m.Recall)
}
