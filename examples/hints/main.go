// Hints: the optimizations a user (or DBA) can hand AIDE to cut labeling
// effort and wait time — range hints, distance hints (Section 3.1) and
// exploration over a sampled dataset (Section 5.2). The example runs the
// same hidden interest under four configurations and prints the effort
// each one needed.
package main

import (
	"fmt"
	"log"

	aide "github.com/explore-by-example/aide"
)

func main() {
	table := aide.GenerateSDSS(200_000, 5)
	view, err := aide.NewView(table, []string{"rowc", "colc"})
	if err != nil {
		log.Fatal(err)
	}

	// One hidden medium-sized interest region (evaluation targets come
	// from the workload generator so each run is placed identically).
	target, err := aide.GenerateTarget(view, aide.TargetSpec{
		NumAreas: 1,
		Size:     aide.Medium,
	}, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hidden interest:", target.Query(view).SQL())

	type config struct {
		name string
		prep func() (*aide.View, aide.Options, error)
	}
	configs := []config{
		{"baseline (no hints)", func() (*aide.View, aide.Options, error) {
			return view, aide.DefaultOptions(), nil
		}},
		{"distance hint (areas >= 4 units wide)", func() (*aide.View, aide.Options, error) {
			o := aide.DefaultOptions()
			o.DistanceHint = 4
			return view, o, nil
		}},
		{"range hint (user focuses on one quadrant)", func() (*aide.View, aide.Options, error) {
			o := aide.DefaultOptions()
			// Focus on the quadrant actually containing the target:
			// emulate a user who roughly knows where to look.
			center := target.Areas[0].Center()
			hint := aide.R(0, 50, 0, 50)
			for d, c := range center {
				if c > 50 {
					hint[d] = aide.Interval{Lo: 50, Hi: 100}
				}
			}
			o.RangeHint = hint
			return view, o, nil
		}},
		{"sampled dataset (explore a 10% sample)", func() (*aide.View, aide.Options, error) {
			sampled, err := view.Sampled(0.1, 99)
			return sampled, aide.DefaultOptions(), err
		}},
	}

	// Average each configuration over a few session seeds: single runs
	// are noisy (the paper averages ten sessions per data point).
	const runs = 5
	fmt.Printf("\n%-44s %12s %7s %12s\n", "configuration", "avg labels", "F", "wait/iter")
	for _, c := range configs {
		var labelSum, okRuns int
		var fSum, waitSum float64
		for r := 0; r < runs; r++ {
			runView, opts, err := c.prep()
			if err != nil {
				log.Fatal(err)
			}
			opts.Seed = 21 + int64(r)
			user := aide.NewSimulatedUser(target)
			session, err := aide.NewSession(runView, user, opts)
			if err != nil {
				log.Fatal(err)
			}
			// Accuracy is always measured on the full data, even when
			// exploring the sample.
			trace, err := aide.RunTrace(session, view, target, 0.8, 200)
			if err != nil {
				log.Fatal(err)
			}
			if n, ok := trace.SamplesToAccuracy(0.8); ok {
				labelSum += n
				okRuns++
			}
			fSum += trace.MaxF()
			waitSum += trace.AvgIterSeconds()
		}
		labels := "never reached 0.8"
		if okRuns > 0 {
			labels = fmt.Sprintf("%d", labelSum/okRuns)
		}
		fmt.Printf("%-44s %12s %7.3f %9.1fms\n",
			c.name, labels, fSum/runs, waitSum/runs*1000/1)
	}

	fmt.Println("\nhints shrink the search: the distance hint skips coarse grid levels,")
	fmt.Println("the range hint shrinks the space, and the sampled dataset cuts the")
	fmt.Println("per-iteration wait with little accuracy loss.")
}
