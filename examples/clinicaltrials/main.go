// Clinicaltrials: the evidence-based-medicine scenario that motivates the
// paper (Section 1) and its running example (Figures 2 and 6). A medical
// expert building a systematic review can judge whether a given trial is
// relevant but cannot write the query that collects all relevant trials.
// The expert's (hidden) interest here is exactly the paper's example
// tree: trials with (age <= 20 AND 10 < dosage <= 15) OR
// (20 < age <= 40 AND dosage <= 10).
package main

import (
	"fmt"
	"log"
	"math/rand"

	aide "github.com/explore-by-example/aide"
)

func main() {
	// A synthetic clinical-trials table: patient age, medication dosage,
	// enrollment year, and outcome score.
	table := generateTrials(80_000, 3)
	view, err := aide.NewView(table, []string{"age", "dosage"})
	if err != nil {
		log.Fatal(err)
	}

	// The expert's hidden interest — the paper's Figure 2 concept.
	relevant := func(age, dosage float64) bool {
		return (age <= 20 && dosage > 10 && dosage <= 15) ||
			(age > 20 && age <= 40 && dosage <= 10)
	}
	reviewed := 0
	oracle := aide.OracleFunc(func(v *aide.View, row int) bool {
		reviewed++
		p := v.RawPoint(row)
		return relevant(p[0], p[1])
	})

	session, err := aide.NewSession(view, oracle, aide.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := aide.RunUntil(session, func(r *aide.IterationResult) bool {
		return r.TotalLabeled >= 700
	}, 60); err != nil {
		log.Fatal(err)
	}

	q := session.FinalQuery()
	fmt.Println("the expert reviewed", reviewed, "trials; AIDE predicts:")
	fmt.Println(" ", q.SQL())

	// Quality of the systematic review: how many relevant trials does the
	// predicted query collect, and how much noise?
	rows, err := q.Execute(view)
	if err != nil {
		log.Fatal(err)
	}
	tp, total := 0, 0
	for _, row := range rows {
		p := view.RawPoint(row)
		if relevant(p[0], p[1]) {
			tp++
		}
	}
	for row := 0; row < view.NumRows(); row++ {
		p := view.RawPoint(row)
		if relevant(p[0], p[1]) {
			total++
		}
	}
	fmt.Printf("\ncollected %d trials: %d truly relevant of %d in the database\n",
		len(rows), tp, total)
	if len(rows) > 0 && total > 0 {
		fmt.Printf("precision %.3f, recall %.3f\n",
			float64(tp)/float64(len(rows)), float64(tp)/float64(total))
	}
	fmt.Printf("\n(manually, the expert would have skimmed thousands of trials;\n")
	fmt.Printf(" with AIDE they labeled %d.)\n", session.LabeledCount())
}

// generateTrials builds the synthetic trials table: ages skew adult,
// dosages cluster at standard levels, year and outcome are context
// attributes the exploration ignores.
func generateTrials(n int, seed int64) *aide.Table {
	rng := rand.New(rand.NewSource(seed))
	schema := aide.Schema{
		{Name: "age", Min: 0, Max: 90},
		{Name: "dosage", Min: 0, Max: 60},
		{Name: "year", Min: 1990, Max: 2014},
		{Name: "outcome", Min: 0, Max: 100},
	}
	b := aide.NewBuilder("trials", schema)
	standardDoses := []float64{5, 10, 12.5, 15, 20, 25, 40}
	for i := 0; i < n; i++ {
		age := clamp(35+rng.NormFloat64()*22, 0, 90)
		var dosage float64
		if rng.Float64() < 0.7 {
			dosage = clamp(standardDoses[rng.Intn(len(standardDoses))]+rng.NormFloat64()*1.5, 0, 60)
		} else {
			dosage = rng.Float64() * 60
		}
		year := 1990 + rng.Float64()*24
		outcome := clamp(50+rng.NormFloat64()*20, 0, 100)
		b.Add(age, dosage, year, outcome)
	}
	return b.Build()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
