// Remote: explore-by-example over HTTP. The AIDE steering logic runs in
// a server process (the middleware of the paper's architecture); this
// program plays the front-end, fetching samples over the wire, labeling
// them, and finally asking for the predicted query. Here the "user" is a
// simulated one with a hidden rectangular interest.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	aide "github.com/explore-by-example/aide"
)

func main() {
	// Server side: register a view and serve it. (A real deployment runs
	// cmd/aideserver; the in-process test server keeps this example
	// self-contained.)
	table := aide.GenerateSDSS(50_000, 1)
	view, err := aide.NewView(table, []string{"rowc", "colc"})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(aide.NewServiceServer(map[string]*aide.View{"sdss": view}))
	defer server.Close()
	fmt.Println("exploration service at", server.URL)

	// Client side.
	client := aide.NewServiceClient(server.URL, http.DefaultClient)
	ctx := context.Background()

	id, err := client.CreateSession(ctx, aide.CreateSessionRequest{
		View:                "sdss",
		Seed:                7,
		SamplesPerIteration: 20,
		MaxIterations:       40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("session", id)

	// The hidden interest the remote user labels against.
	hidden := aide.R(700, 830, 300, 480) // raw rowc x colc ranges
	labeled := 0
	for labeled < 400 {
		sample, err := client.NextSample(ctx, id)
		if errors.Is(err, aide.ErrSessionDone) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		p := aide.Point{sample.Values["rowc"], sample.Values["colc"]}
		if err := client.SubmitLabel(ctx, id, sample.Row, hidden.Contains(p)); err != nil {
			log.Fatal(err)
		}
		labeled++
		if labeled%100 == 0 {
			st, err := client.Status(ctx, id)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  labeled %d tuples; %d predicted area(s) so far\n",
				labeled, st.RelevantAreas)
		}
	}

	q, err := client.PredictedQuery(ctx, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted query from the service:")
	fmt.Println(" ", q.SQL)
	if err := client.Close(ctx, id); err != nil {
		log.Fatal(err)
	}
}
