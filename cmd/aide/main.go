// Command aide runs an interactive explore-by-example session in the
// terminal: the program shows you sample tuples, you answer y/n for
// relevant/irrelevant, and AIDE steers toward a query predicting your
// interest — the workflow of Figure 1 with you as the human in the loop.
//
//	aide -dataset sdss -attrs rowc,colc
//	aide -csv items.csv -attrs price,bids -iters 20
//
// After every iteration the current predicted query is printed; stop any
// time with 'q'.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"

	aide "github.com/explore-by-example/aide"
	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/viz"
)

func main() {
	var (
		kind      = flag.String("dataset", "sdss", "built-in dataset: sdss, auction (ignored with -csv)")
		csvPath   = flag.String("csv", "", "load a CSV file (numeric columns, header row) instead")
		attrs     = flag.String("attrs", "", "comma-separated exploration attributes (default: first two columns)")
		rows      = flag.Int("rows", 50_000, "rows to generate for built-in datasets")
		iters     = flag.Int("iters", 50, "maximum iterations")
		budget    = flag.Int("budget", 10, "samples per iteration")
		seed      = flag.Int64("seed", 1, "random seed")
		showViz   = flag.Bool("viz", false, "draw an ASCII map of samples and predicted areas each iteration (2-D only)")
		state     = flag.String("state", "", "session state file: resumed when it exists, saved on exit")
		logFormat = flag.String("log-format", "text", "diagnostic log format: text or json")
		verbose   = flag.Bool("v", false, "log per-iteration diagnostics to stderr")

		conflictPolicy = flag.String("conflict-policy", "last-wins", "resolution of contradictory labels: last-wins, majority or strict")
		budgetRows     = flag.Int("budget-labeled-rows", 0, "stop asking for labels after this many rows (0 unlimited)")
		budgetIterTime = flag.Duration("budget-iteration-time", 0, "soft cap on one iteration's wall time (0 unlimited)")
		budgetSamples  = flag.Int("budget-samples-per-iteration", 0, "hard cap on labels per iteration (0 unlimited)")
		budgetNodes    = flag.Int("budget-tree-nodes", 0, "cap on decision-tree nodes (0 unlimited)")
		budgetMem      = flag.Int64("budget-mem-bytes", 0, "per-iteration scratch-memory bound; clustering degrades to grid beyond it (0 unlimited)")

		cacheBytes = flag.Int64("cache-bytes", 0, "predicate-result cache budget in bytes (0 disables); results are bit-identical either way")
	)
	flag.Parse()
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelDebug
	}
	logger, err := obs.NewLogger(*logFormat, os.Stderr, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aide: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	policy, err := aide.ParseConflictPolicy(*conflictPolicy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aide: %v\n", err)
		os.Exit(2)
	}
	bud := aide.Budget{
		MaxLabeledRows:         *budgetRows,
		MaxIterationTime:       *budgetIterTime,
		MaxSamplesPerIteration: *budgetSamples,
		MaxTreeNodes:           *budgetNodes,
		MaxMemBytes:            *budgetMem,
	}
	if err := run(*kind, *csvPath, *attrs, *rows, *iters, *budget, *seed, *showViz, *state, policy, bud, *cacheBytes, os.Stdin, os.Stdout); err != nil {
		logger.Error("session failed", "err", err)
		os.Exit(1)
	}
}

func run(kind, csvPath, attrCSV string, rows, iters, budget int, seed int64, showViz bool, statePath string, policy aide.ConflictPolicy, bud aide.Budget, cacheBytes int64, stdin io.Reader, stdout io.Writer) error {
	var tab *aide.Table
	var err error
	switch {
	case csvPath != "":
		tab, err = loadCSV(csvPath)
		if err != nil {
			return err
		}
	case kind == "sdss":
		tab = aide.GenerateSDSS(rows, seed)
	case kind == "auction":
		tab = aide.GenerateAuction(rows, seed)
	default:
		return fmt.Errorf("unknown dataset %q", kind)
	}

	names := tab.Schema().Names()
	exploreAttrs := names
	if attrCSV != "" {
		exploreAttrs = strings.Split(attrCSV, ",")
		for i := range exploreAttrs {
			exploreAttrs[i] = strings.TrimSpace(exploreAttrs[i])
		}
	} else if len(exploreAttrs) > 2 {
		exploreAttrs = exploreAttrs[:2]
	}

	view, err := aide.NewView(tab, exploreAttrs)
	if err != nil {
		return err
	}

	in := bufio.NewScanner(stdin)
	quit := false
	// The session may re-consult the oracle when a tuple resurfaces (to
	// detect label conflicts); memoize answers so a human is never asked
	// about the same tuple twice.
	answered := map[int]bool{}
	oracle := aide.OracleFunc(func(v *aide.View, row int) bool {
		if lab, ok := answered[row]; ok {
			return lab
		}
		if quit {
			return false
		}
		fmt.Fprintf(stdout, "\n  tuple #%d:\n", row)
		for i, name := range names {
			fmt.Fprintf(stdout, "    %-18s %g\n", name, tab.Value(row, i))
		}
		for {
			fmt.Fprint(stdout, "  relevant? [y/n/q] ")
			if !in.Scan() {
				quit = true
				return false
			}
			switch strings.ToLower(strings.TrimSpace(in.Text())) {
			case "y", "yes":
				answered[row] = true
				return true
			case "n", "no", "":
				answered[row] = false
				return false
			case "q", "quit":
				quit = true
				return false
			}
		}
	})

	var session *aide.Session
	if statePath != "" {
		if f, err := os.Open(statePath); err == nil {
			session, err = aide.ResumeSession(f, view, oracle)
			f.Close()
			if err != nil {
				return fmt.Errorf("resuming %s: %w", statePath, err)
			}
			fmt.Fprintf(stdout, "Resumed session from %s (%d tuples already labeled).\n",
				statePath, session.LabeledCount())
		}
	}
	if session == nil {
		opts := aide.DefaultOptions()
		opts.Seed = seed
		opts.SamplesPerIteration = budget
		opts.ConflictPolicy = policy
		opts.Budget = bud
		opts.CacheBytes = cacheBytes
		var err error
		session, err = aide.NewSession(view, oracle, opts)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "Exploring %s (%d rows) on attributes %v.\n",
		tab.Name(), tab.NumRows(), exploreAttrs)
	fmt.Fprintln(stdout, "Label each shown tuple as relevant (y) or irrelevant (n); q to stop.")

	for i := 0; i < iters && !quit; i++ {
		res, err := session.RunIteration()
		if err != nil {
			return err
		}
		if res.NewSamples == 0 && !quit {
			fmt.Fprintln(stdout, "\nexploration space exhausted")
			break
		}
		fmt.Fprintf(stdout, "\n-- iteration %d: %d samples (%d relevant), %d total labeled, %d predicted area(s), wait %s\n",
			res.Iteration, res.NewSamples, res.NewRelevant, res.TotalLabeled,
			res.RelevantAreas, res.Duration.Round(1e6))
		if len(res.Degradations) > 0 {
			fmt.Fprintf(stdout, "   degraded (budget): %s\n", strings.Join(res.Degradations, ", "))
		}
		if res.Conflicts > 0 {
			fmt.Fprintf(stdout, "   label conflicts resolved this iteration: %d (%s policy)\n", res.Conflicts, policy)
		}
		slog.Debug("iteration",
			"iteration", res.Iteration,
			"new_samples", res.NewSamples,
			"new_relevant", res.NewRelevant,
			"total_labeled", res.TotalLabeled,
			"areas", res.RelevantAreas,
			"duration", res.Duration,
			"train_duration", res.TrainDuration,
		)
		if q := session.FinalQuery(); len(q.Areas) > 0 {
			fmt.Fprintln(stdout, "   current prediction:", q.SQL())
		}
		if showViz && view.Dims() >= 2 {
			points, labels := session.LabeledPoints()
			if art, err := viz.Render(72, 24, 0, 1, points, labels, session.RelevantAreas()); err == nil {
				fmt.Fprint(stdout, art)
			}
		}
	}

	if statePath != "" {
		f, err := os.Create(statePath)
		if err != nil {
			return fmt.Errorf("saving session: %w", err)
		}
		if err := session.Save(f); err != nil {
			f.Close()
			return fmt.Errorf("saving session: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nsession saved to %s\n", statePath)
	}

	q := session.FinalQuery()
	fmt.Fprintln(stdout, "\n=== final predicted query ===")
	fmt.Fprintln(stdout, q.SQL())
	if sel, err := q.Selectivity(view); err == nil {
		fmt.Fprintf(stdout, "(selects %.2f%% of the data)\n", sel*100)
	}
	if len(q.Areas) > 0 {
		fmt.Fprint(stdout, session.DiagnosticsString())
	}
	return nil
}

// loadCSV reads a numeric CSV with a header row into a Table. Column
// domains come from the observed min/max.
func loadCSV(path string) (*aide.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(bufio.NewReader(f))
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	cols := make([][]float64, len(header))
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("row has %d fields, header has %d", len(rec), len(header))
		}
		for i, s := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", header[i], err)
			}
			cols[i] = append(cols[i], v)
		}
	}
	if len(cols[0]) == 0 {
		return nil, fmt.Errorf("%s: no data rows", path)
	}
	schema := make(aide.Schema, len(header))
	for i, name := range header {
		lo, hi := cols[i][0], cols[i][0]
		for _, v := range cols[i] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		schema[i] = aide.Column{Name: strings.TrimSpace(name), Min: lo, Max: hi}
	}
	return aide.NewTable(strings.TrimSuffix(path, ".csv"), schema, cols)
}
