package main

import (
	"fmt"
	aide "github.com/explore-by-example/aide"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "items.csv")
	data := "price,bids\n10.5,3\n200,17\n55,0\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := loadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || tab.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", tab.NumRows(), tab.NumCols())
	}
	s := tab.Schema()
	if s[0].Name != "price" || s[0].Min != 10.5 || s[0].Max != 200 {
		t.Errorf("price column = %+v", s[0])
	}
	if tab.Value(1, 1) != 17 {
		t.Errorf("value = %v", tab.Value(1, 1))
	}
}

func TestLoadCSVErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("a,b\n1,notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCSV(bad); err == nil {
		t.Error("non-numeric cell should error")
	}
	empty := filepath.Join(dir, "empty.csv")
	if err := os.WriteFile(empty, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCSV(empty); err == nil {
		t.Error("header-only file should error")
	}
}

func TestRunInteractiveSession(t *testing.T) {
	// Feed a scripted y/n transcript and quit; the session must print a
	// final query block without crashing.
	input := strings.NewReader(strings.Repeat("n\n", 10) + "y\nq\n")
	var out strings.Builder
	err := run("sdss", "", "rowc,colc", 3000, 3, 4, 1, true, "", aide.ConflictLastWins, aide.Budget{}, 0, input, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Exploring PhotoObjAll", "relevant? [y/n/q]", "final predicted query", "SELECT * FROM PhotoObjAll"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBudgetedSessionReportsDegradation(t *testing.T) {
	// A 2-row labeling budget trips on the first iteration; the CLI must
	// surface the degradation instead of silently under-sampling.
	input := strings.NewReader(strings.Repeat("n\n", 30))
	var out strings.Builder
	bud := aide.Budget{MaxLabeledRows: 2}
	if err := run("sdss", "", "rowc,colc", 3000, 2, 4, 1, false, "", aide.ConflictMajority, bud, 0, input, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "degraded (budget)") {
		t.Errorf("budget degradation not reported:\n%s", out.String())
	}
}

func TestRunUnknownDataset(t *testing.T) {
	err := run("bogus", "", "", 10, 1, 1, 1, false, "", aide.ConflictLastWins, aide.Budget{}, 0, strings.NewReader(""), &strings.Builder{})
	if err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestRunWithCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	var b strings.Builder
	b.WriteString("x,y\n")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i%25, i/25)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	input := strings.NewReader(strings.Repeat("n\n", 5) + "q\n")
	var out strings.Builder
	if err := run("", path, "", 0, 2, 3, 1, false, "", aide.ConflictLastWins, aide.Budget{}, 0, input, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "final predicted query") {
		t.Error("missing final query")
	}
}

func TestRunSaveAndResumeState(t *testing.T) {
	state := filepath.Join(t.TempDir(), "session.aide")
	// First run: label a few tuples, then quit; state is saved.
	in := strings.NewReader("n\nn\ny\nq\n")
	var out strings.Builder
	if err := run("sdss", "", "rowc,colc", 2000, 2, 3, 1, false, state, aide.ConflictLastWins, aide.Budget{}, 0, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "session saved to") {
		t.Fatalf("state not saved:\n%s", out.String())
	}
	// Second run resumes and reports the prior labels.
	in = strings.NewReader("q\n")
	out.Reset()
	if err := run("sdss", "", "rowc,colc", 2000, 1, 3, 1, false, state, aide.ConflictLastWins, aide.Budget{}, 0, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Resumed session from") {
		t.Fatalf("did not resume:\n%s", out.String())
	}
}
