// Command aideshard runs a shard worker: it builds the same sharded
// view an aideserver coordinator does — same dataset, same exploration
// attributes, same shard count, so the same view fingerprint — and
// serves a subset of the shards over the shardrpc framed protocol, on
// TCP or a unix socket. The coordinator (aideserver -shard-addr, or
// service.Server.ShardAddrs) dials it, verifies fingerprint and shard
// count in the hello exchange, and routes the announced shards here;
// shards no worker claims stay in the coordinator's process.
//
//	aideshard -listen :9090      -sdss 100000 -shards 4 -serve 0,1
//	aideshard -listen /tmp/s.sock -sdss 100000 -shards 4 -serve 2,3
//
// Because shard construction is deterministic, the worker's shards are
// bit-identical to the coordinator's: remote answers match local ones
// exactly, and a killed worker can be restarted with the same flags and
// resume serving the same shards.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/shardrpc"
)

func main() {
	var (
		listen      = flag.String("listen", ":9090", "listen address: host:port for TCP, a filesystem path for a unix socket")
		addrFile    = flag.String("addr-file", "", "write the bound listen address to this file (useful with -listen :0)")
		sdssRows    = flag.Int("sdss", 0, "rows of the built-in SDSS dataset (0 to disable)")
		auctionRows = flag.Int("auction", 0, "rows of the built-in AuctionMark dataset (0 to disable)")
		csvPath     = flag.String("csv", "", "serve shards of a CSV dataset (numeric columns, header row)")
		csvName     = flag.String("csv-name", "csv", "table name for -csv (part of the view identity)")
		seed        = flag.Int64("seed", 1, "dataset generation seed; must match the coordinator's")
		attrs       = flag.String("attrs", "rowc,colc", "exploration attributes; must match the coordinator's")
		workers     = flag.Int("workers", 0, "index build worker count (0: GOMAXPROCS)")
		shards      = flag.Int("shards", 0, "total shard count of the view; must match the coordinator's -shards")
		serve       = flag.String("serve", "", "comma-separated shard indexes to serve (empty: all of them)")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logFormat, os.Stderr, slog.LevelInfo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aideshard: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *shards <= 0 {
		fatal("-shards must be positive (and match the coordinator)")
	}
	var tab *dataset.Table
	var exploreAttrs []string
	switch {
	case *sdssRows > 0:
		tab = dataset.GenerateSDSS(*sdssRows, *seed)
		exploreAttrs = splitList(*attrs)
	case *auctionRows > 0:
		tab = dataset.GenerateAuction(*auctionRows, *seed)
		exploreAttrs = []string{"current_price", "num_bids"}
	case *csvPath != "":
		f, err := os.Open(*csvPath)
		if err != nil {
			fatal("opening csv", "path", *csvPath, "err", err)
		}
		tab, err = dataset.ReadCSV(f, *csvName, nil)
		f.Close()
		if err != nil {
			fatal("reading csv", "path", *csvPath, "err", err)
		}
		exploreAttrs = tab.Schema().Names()
	default:
		fatal("no dataset configured (use -sdss, -auction or -csv)")
	}

	base, err := engine.NewViewWorkers(tab, exploreAttrs, *workers)
	if err != nil {
		fatal("building view", "err", err)
	}
	sharded := base.WithShards(engine.ShardOptions{Shards: *shards})
	backends := sharded.LocalShardBackends()

	indexes, err := parseServe(*serve, *shards)
	if err != nil {
		fatal("bad -serve", "err", err)
	}
	subset := make(map[int]engine.ShardBackend, len(indexes))
	for _, i := range indexes {
		subset[i] = backends[i]
	}

	network := shardrpc.Network(*listen)
	if network == "unix" {
		// A SIGKILL'd predecessor leaves its socket file behind; remove
		// it so restarts rebind.
		os.Remove(*listen)
	}
	ln, err := net.Listen(network, *listen)
	if err != nil {
		fatal("listen", "addr", *listen, "err", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal("writing addr file", "path", *addrFile, "err", err)
		}
	}

	srv := shardrpc.NewServer(base.Fingerprint(), *shards, subset)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		logger.Info("shutting down")
		srv.Close()
	}()

	logger.Info("serving shards",
		"listen", ln.Addr().String(), "network", network,
		"fingerprint", base.Fingerprint(), "total_shards", *shards,
		"serving", indexes, "rows", tab.NumRows())
	if err := srv.Serve(ln); err != nil {
		fatal("serve", "err", err)
	}
	logger.Info("bye")
}

// parseServe parses the -serve index list, defaulting to every shard.
func parseServe(s string, total int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		out := make([]int, total)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	seen := make(map[int]bool)
	var out []int
	for _, part := range strings.Split(s, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("shard index %q: %w", part, err)
		}
		if i < 0 || i >= total {
			return nil, fmt.Errorf("shard index %d out of range [0,%d)", i, total)
		}
		if seen[i] {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	sort.Ints(out)
	return out, nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
