package main

import (
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/geom"
	"github.com/explore-by-example/aide/internal/shardrpc"
)

// The kill test re-execs this test binary as a real aideshard worker:
// when the guard variable is set, TestMain runs main() instead of the
// test suite, and os.Args carries ordinary worker flags.
const crashChildEnv = "AIDESHARD_CRASH_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startWorker launches an aideshard child serving shards 1 and 3 of a
// 4-way SDSS view on the given unix socket and waits until it is
// accepting (the addr file is written after Listen).
func startWorker(t *testing.T, sock, tag string) *exec.Cmd {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr-"+tag)
	cmd := exec.Command(os.Args[0],
		"-listen", sock,
		"-addr-file", addrFile,
		"-sdss", "4000",
		"-seed", "1",
		"-shards", "4",
		"-serve", "1,3",
	)
	cmd.Env = append(os.Environ(), crashChildEnv+"=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker child: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			return cmd
		}
		if time.Now().After(deadline) {
			t.Fatal("worker child never wrote its address")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func randomRects(n int, rng *rand.Rand) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		r := make(geom.Rect, 2)
		for d := range r {
			a := rng.Float64() * 100
			b := rng.Float64() * 100
			if a > b {
				a, b = b, a
			}
			r[d] = geom.Interval{Lo: a, Hi: b}
		}
		out = append(out, r)
	}
	return out
}

// TestWorkerKillRecovery is the process-isolation smoke: a coordinator
// routes two shards to a real aideshard process, the process is
// SIGKILLed mid-service, and the coordinator must degrade to the named
// shard_partial contract — never a silently wrong answer — with the
// shard's breaker open. A replacement worker started with the same
// flags (rebinding over the stale socket file) brings the topology back
// to healthy with bit-exact answers.
func TestWorkerKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	sock := filepath.Join(t.TempDir(), "w.sock")
	worker := startWorker(t, sock, "1")

	// The coordinator builds the same view the worker flags describe.
	tab := dataset.GenerateSDSS(4000, 1)
	base, err := engine.NewViewWorkers(tab, []string{"rowc", "colc"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base.WithShards(engine.ShardOptions{Shards: 4, CooldownOps: 2})
	client, err := shardrpc.Dial(sock, base.Fingerprint(), 4, shardrpc.Options{
		DialTimeout:     500 * time.Millisecond,
		OpTimeout:       5 * time.Second,
		MaxRetries:      1,
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      5 * time.Millisecond,
		BreakerCooldown: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := len(client.Shards()); got != 2 {
		t.Fatalf("worker announced %d shards, want 2", got)
	}
	mixed, err := sharded.WithShardBackends(client.Backends())
	if err != nil {
		t.Fatal(err)
	}
	mixed, tracker := mixed.WithShardTracker()

	rng := rand.New(rand.NewSource(1))
	rects := randomRects(40, rng)
	for ri, rect := range rects[:5] {
		if got, want := mixed.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: remote answer differs pre-kill", ri)
		}
	}

	// SIGKILL: no shutdown path runs; the socket file stays behind.
	if err := worker.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	worker.Wait()

	sawPartial := false
	for ri, rect := range rects[5:20] {
		want := base.RowsIn(rect)
		got := mixed.RowsIn(rect)
		if name, partial := tracker.Drain(); partial {
			sawPartial = true
			if !strings.HasPrefix(name, "shard_partial:") {
				t.Fatalf("rect %d: degradation %q, want shard_partial:n/N", ri, name)
			}
			ref := make(map[int]struct{}, len(want))
			for _, r := range want {
				ref[r] = struct{}{}
			}
			for _, r := range got {
				if _, ok := ref[r]; !ok {
					t.Fatalf("rect %d: degraded result has row %d not in reference", ri, r)
				}
			}
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: undegraded result differs with worker dead", ri)
		}
	}
	if !sawPartial {
		t.Fatal("worker death never surfaced as a partial result")
	}
	if client.BreakerState(1) == shardrpc.BreakerClosed && client.BreakerState(3) == shardrpc.BreakerClosed {
		t.Fatal("no breaker opened with the worker dead")
	}

	// Same flags, same socket: the replacement removes the stale socket
	// file and resumes serving bit-identical shards.
	startWorker(t, sock, "2")
	full := geom.R(0, 100, 0, 100)
	recovered := func() bool {
		for _, h := range mixed.ShardHealth() {
			if h.State != engine.ShardHealthy.String() {
				return false
			}
		}
		return client.BreakerState(1) == shardrpc.BreakerClosed &&
			client.BreakerState(3) == shardrpc.BreakerClosed
	}
	for i := 0; i < 100 && !recovered(); i++ {
		mixed.Count(full)
	}
	if !recovered() {
		t.Fatalf("never recovered after worker restart: %+v", mixed.ShardHealth())
	}
	tracker.Drain()
	for ri, rect := range rects[20:] {
		if got, want := mixed.RowsIn(rect), base.RowsIn(rect); !reflect.DeepEqual(got, want) {
			t.Fatalf("rect %d: post-restart result differs", ri)
		}
	}
	if name, partial := tracker.Drain(); partial {
		t.Fatalf("post-restart ops still degraded: %q", name)
	}
}
