// Command aidebench regenerates the tables and figures of the paper's
// evaluation (Section 6). Each experiment id names a paper artifact:
//
//	aidebench -list
//	aidebench -run fig8a
//	aidebench -run all -rows 100000 -sessions 10
//	aidebench -run fig8d,fig8e -quick
//
// Absolute numbers depend on machine and scale; the shapes (orderings,
// rough factors, crossovers) reproduce the paper. See EXPERIMENTS.md.
//
// The -json flag instead runs the hot-path worker-pool benchmark (CART
// training, grid scans, index build, k-means at workers=1 vs N) and
// writes the machine-readable report tracked as BENCH_hotpaths.json:
//
//	aidebench -json BENCH_hotpaths.json
//	aidebench -json - -workers 8 -quick
//
// Benchmarks run under GOMAXPROCS = runtime.NumCPU() by default (override
// with -gomaxprocs); when GOMAXPROCS < workers the report carries a
// warning field, because time-sliced "parallel" timings say nothing
// about multicore scaling — and -json exits nonzero after writing the
// report, so a CI-regenerated BENCH_hotpaths.json can never quietly
// carry a warning. The -baseline flag turns aidebench into a regression
// gate: it reruns the hot-path suite at a committed BENCH_hotpaths.json's
// scale and exits nonzero when grid_scan or grid_scan_batched
// single-thread ns/op regresses more than 20%, the batched path's
// speedup over the sequential per-rect loop drops below 3x, or any
// kernel loses its bit-identity gate:
//
//	aidebench -baseline BENCH_hotpaths.json
//
// The -trace flag replays an exploration flight-recorder journal (the
// <id>.events.jsonl the server keeps next to each WAL, or a saved
// /v1/sessions/{id}/events stream) into a per-phase latency and
// convergence report, offline:
//
//	aidebench -trace data/abc123.events.jsonl
//	aidebench -trace session.jsonl -trace-json report.json
//
// The -throughput flag runs the multi-session compute-reuse benchmark
// (N concurrent sessions over one registry-shared, cache-backed view vs
// per-session private views), writes the report tracked as
// BENCH_throughput.json, and exits nonzero when cached results are not
// bit-identical to uncached ones or the shared cache never hits:
//
//	aidebench -throughput BENCH_throughput.json
//	aidebench -throughput - -sessions 4 -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/explore-by-example/aide/internal/bench"
	"github.com/explore-by-example/aide/internal/obs"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id(s), comma separated, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		rows     = flag.Int("rows", 0, "dataset rows standing in for 10GB (default 100000; fig9 scales to 10x)")
		sessions = flag.Int("sessions", 0, "sessions averaged per data point (default 10)")
		maxIter  = flag.Int("maxiter", 0, "max iterations per session (default 250)")
		seed     = flag.Int64("seed", 0, "base random seed")
		quick    = flag.Bool("quick", false, "reduced scale for a fast pass")
		verbose  = flag.Bool("v", false, "stream per-session progress")
		csvDir   = flag.String("csvdir", "", "also write each report as <id>.csv into this directory")
		metrics  = flag.String("metrics", "", "after all runs, dump internal counters as JSON to this file ('-' for stdout)")
		jsonOut  = flag.String("json", "", "run the hot-path worker-pool benchmark and write its JSON report to this file ('-' for stdout)")
		workers  = flag.Int("workers", 0, "worker count for the -json benchmark's parallel side (0: AIDE_WORKERS or GOMAXPROCS)")
		procs    = flag.Int("gomaxprocs", 0, "GOMAXPROCS while benchmarking (0: runtime.NumCPU(); honest speedups need gomaxprocs >= workers)")
		baseline = flag.String("baseline", "", "regression-gate mode: rerun the hot-path suite at this committed BENCH_hotpaths.json's scale and exit nonzero if grid_scan or grid_scan_batched single-thread ns/op regresses >20%, the batched speedup drops below 3x, or any identical gate fails")

		tracePath = flag.String("trace", "", "replay a flight-recorder JSONL journal into a per-phase latency/convergence report")
		traceJSON = flag.String("trace-json", "", "also write the -trace report as JSON to this file ('-' for stdout)")

		throughputOut = flag.String("throughput", "", "run the multi-session compute-reuse benchmark (shared view registry + predicate cache vs per-session views) and write its JSON report to this file ('-' for stdout); exits nonzero when the bit-identity or cache-hit gate fails")
		cacheBytes    = flag.Int64("cache-bytes", 0, "shared cache budget for -throughput (default 32 MiB)")
		iters         = flag.Int("iters", 0, "steering iterations per session for -throughput (default 8)")
	)
	flag.Parse()

	// Benchmarks historically inherited whatever GOMAXPROCS the harness
	// set — BENCH_hotpaths.json once recorded gomaxprocs=1 with
	// workers=4, making every "speedup" a single-core artifact. Default
	// to all CPUs so parallel timings mean what they claim.
	n := *procs
	if n <= 0 {
		n = runtime.NumCPU()
	}
	runtime.GOMAXPROCS(n)

	if *baseline != "" {
		if err := runBaselineGate(*baseline, *workers, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
			os.Exit(1)
		}
		if *run == "" && *jsonOut == "" && *throughputOut == "" && *tracePath == "" {
			return
		}
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *tracePath != "" {
		if err := runTrace(*tracePath, *traceJSON); err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
			os.Exit(1)
		}
		if *run == "" && *jsonOut == "" && *throughputOut == "" {
			return
		}
	}
	if *jsonOut != "" {
		if err := runHotpaths(*jsonOut, *workers, *rows, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
			os.Exit(1)
		}
		if *run == "" && *throughputOut == "" {
			return
		}
	}
	if *throughputOut != "" {
		if err := runThroughput(*throughputOut, *sessions, *rows, *iters, *seed, *cacheBytes, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
			os.Exit(1)
		}
		if *run == "" {
			return
		}
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: aidebench -run <id>[,<id>...] | -run all | -json <path> | -throughput <path> | -trace <journal> | -list")
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *sessions > 0 {
		cfg.Sessions = *sessions
	}
	if *maxIter > 0 {
		cfg.MaxIter = *maxIter
	}
	cfg.Seed = *seed
	cfg.Verbose = *verbose
	cfg.Out = os.Stderr

	var ids []string
	if *run == "all" {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		rep, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *metrics != "" {
		if err := dumpMetrics(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
			os.Exit(1)
		}
	}
}

// runHotpaths benchmarks the parallelized hot paths at workers=1 vs N
// and writes the JSON perf-trajectory report (see BENCH_hotpaths.json).
func runHotpaths(path string, workers, rows int, seed int64, quick bool) error {
	cfg := bench.DefaultHotpathConfig()
	cfg.Workers = workers
	cfg.Seed = seed
	if quick {
		cfg.Rows, cfg.TrainPoints, cfg.ClusterPoints = 30_000, 1_500, 8_000
		cfg.MinTime = 50 * time.Millisecond
	}
	if rows > 0 {
		cfg.Rows = rows
	}
	rep, err := bench.RunHotpaths(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, rep.String())
	if path == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// A warned report is written (so the numbers can still be inspected)
	// but never accepted: exiting nonzero keeps CI from committing a
	// BENCH_hotpaths.json whose speedups are time-slicing artifacts.
	if rep.Warning != "" {
		return fmt.Errorf("report carries a warning: %s", rep.Warning)
	}
	return nil
}

// maxGridScanRegress is the gate threshold: a fresh grid_scan (or
// grid_scan_batched) single-thread ns/op more than 20% above the
// committed baseline fails.
const maxGridScanRegress = 1.20

// minBatchedSpeedup is the floor the batched execution path must hold:
// a 16-rect mixed-kind ExecuteBatch at least 3x faster, single-thread,
// than the equivalent sequential per-rect Count/RowsIn/SampleRect loop.
// Unlike the relative regression check this is an absolute contract —
// the whole point of one-scatter-per-iteration batching.
const minBatchedSpeedup = 3.0

// runBaselineGate reruns the hot-path suite at the committed baseline's
// scale and fails when grid_scan's or grid_scan_batched's single-thread
// ns/op regresses beyond the threshold, the batched speedup drops below
// its floor, or any kernel loses bit-identity. Absolute ns/op
// comparisons across different machines are inherently noisy; the 20%
// margin plus the committed baseline being refreshed on the same class
// of hardware keeps the gate a tripwire for real regressions rather
// than scheduler jitter.
func runBaselineGate(path string, workers int, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base bench.HotpathReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	cfg := bench.DefaultHotpathConfig()
	cfg.Workers = workers
	cfg.Seed = seed
	// Compare at the baseline's recorded scale, whatever the current
	// defaults are — ns/op is only meaningful against the same workload.
	if base.Rows > 0 {
		cfg.Rows = base.Rows
	}
	if base.TrainPoints > 0 {
		cfg.TrainPoints = base.TrainPoints
	}
	if base.ClusterPoints > 0 {
		cfg.ClusterPoints = base.ClusterPoints
	}
	rep, err := bench.RunHotpaths(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, rep.String())
	for _, r := range rep.Results {
		if !r.Identical {
			return fmt.Errorf("gate: kernel %s lost its bit-identity gate", r.Name)
		}
	}
	find := func(rep *bench.HotpathReport, name string) *bench.HotpathResult {
		for i := range rep.Results {
			if rep.Results[i].Name == name {
				return &rep.Results[i]
			}
		}
		return nil
	}
	// Regression-gated kernels. grid_scan pins the per-rect scan via its
	// workers_1 column; grid_scan_batched pins the batched one-pass
	// execution, which lives in its workers_n column (workers_1 there is
	// the sequential per-rect loop the batch replaces).
	type gated struct {
		name  string
		nsOf  func(*bench.HotpathResult) int64
		label string
	}
	for _, gk := range []gated{
		{"grid_scan", func(r *bench.HotpathResult) int64 { return r.NsPerOpWorkers1 }, "w=1"},
		{"grid_scan_batched", func(r *bench.HotpathResult) int64 { return r.NsPerOpWorkersN }, "batch"},
	} {
		want, got := find(&base, gk.name), find(rep, gk.name)
		if want == nil {
			// A freshly added kernel missing from an older committed
			// baseline is not a regression; it gets gated once the
			// baseline is regenerated.
			if gk.name != "grid_scan" {
				fmt.Fprintf(os.Stderr, "gate: baseline %s has no %s result, skipping\n", path, gk.name)
				continue
			}
			return fmt.Errorf("gate: baseline %s has no %s result", path, gk.name)
		}
		if got == nil {
			return fmt.Errorf("gate: fresh run produced no %s result", gk.name)
		}
		ratio := float64(gk.nsOf(got)) / float64(gk.nsOf(want))
		if ratio > maxGridScanRegress {
			return fmt.Errorf("gate: %s %s regressed %.2fx vs baseline (%d ns/op vs %d ns/op, threshold %.2fx)",
				gk.name, gk.label, ratio, gk.nsOf(got), gk.nsOf(want), maxGridScanRegress)
		}
		fmt.Fprintf(os.Stderr, "gate: %s %s %d ns/op vs baseline %d ns/op (%.2fx, threshold %.2fx): ok\n",
			gk.name, gk.label, gk.nsOf(got), gk.nsOf(want), ratio, maxGridScanRegress)
	}
	if batched := find(rep, "grid_scan_batched"); batched != nil {
		if batched.Speedup < minBatchedSpeedup {
			return fmt.Errorf("gate: grid_scan_batched speedup %.2fx below the %.1fx batched-execution floor (batch %d ns/op vs sequential loop %d ns/op)",
				batched.Speedup, minBatchedSpeedup, batched.NsPerOpWorkersN, batched.NsPerOpWorkers1)
		}
		fmt.Fprintf(os.Stderr, "gate: grid_scan_batched speedup %.2fx (floor %.1fx): ok\n",
			batched.Speedup, minBatchedSpeedup)
	}
	return nil
}

// runTrace replays a flight-recorder journal into a per-phase
// latency/convergence report, printed human-readable and optionally
// written as JSON.
func runTrace(journal, jsonPath string) error {
	f, err := os.Open(journal)
	if err != nil {
		return err
	}
	events, err := obs.ReadJournal(f)
	f.Close()
	if err != nil {
		return err
	}
	rep, err := bench.ReplayTrace(events)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if jsonPath == "" {
		return nil
	}
	if jsonPath == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	out, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// runThroughput measures N concurrent sessions over a registry-shared
// cached view against per-session views, writes the JSON report (see
// BENCH_throughput.json), and fails when the bit-identity or cache-hit
// gate trips.
func runThroughput(path string, sessions, rows, iters int, seed, cacheBytes int64, quick bool) error {
	cfg := bench.DefaultThroughputConfig()
	if quick {
		cfg.Rows, cfg.Iterations = 40_000, 8
	}
	if sessions > 0 {
		cfg.Sessions = sessions
	}
	if rows > 0 {
		cfg.Rows = rows
	}
	if iters > 0 {
		cfg.Iterations = iters
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if cacheBytes > 0 {
		cfg.CacheBytes = cacheBytes
	}
	rep, err := bench.RunThroughput(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, rep.String())
	if path == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return rep.Gate()
}

// dumpMetrics writes the cumulative internal counters (engine work,
// steering-loop effort, timing histograms) accumulated over every run,
// so BENCH_*.json trajectories can be correlated with where the engine
// actually spent its effort.
func dumpMetrics(path string) error {
	if path == "-" {
		return obs.Default.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSV dumps one report into dir/<id>.csv.
func writeCSV(dir string, rep *bench.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, rep.ID+".csv"))
	if err != nil {
		return err
	}
	if err := rep.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
