// Command aidebench regenerates the tables and figures of the paper's
// evaluation (Section 6). Each experiment id names a paper artifact:
//
//	aidebench -list
//	aidebench -run fig8a
//	aidebench -run all -rows 100000 -sessions 10
//	aidebench -run fig8d,fig8e -quick
//
// Absolute numbers depend on machine and scale; the shapes (orderings,
// rough factors, crossovers) reproduce the paper. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/explore-by-example/aide/internal/bench"
	"github.com/explore-by-example/aide/internal/obs"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id(s), comma separated, or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		rows     = flag.Int("rows", 0, "dataset rows standing in for 10GB (default 100000; fig9 scales to 10x)")
		sessions = flag.Int("sessions", 0, "sessions averaged per data point (default 10)")
		maxIter  = flag.Int("maxiter", 0, "max iterations per session (default 250)")
		seed     = flag.Int64("seed", 0, "base random seed")
		quick    = flag.Bool("quick", false, "reduced scale for a fast pass")
		verbose  = flag.Bool("v", false, "stream per-session progress")
		csvDir   = flag.String("csvdir", "", "also write each report as <id>.csv into this directory")
		metrics  = flag.String("metrics", "", "after all runs, dump internal counters as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: aidebench -run <id>[,<id>...] | -run all | -list")
		os.Exit(2)
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	if *rows > 0 {
		cfg.Rows = *rows
	}
	if *sessions > 0 {
		cfg.Sessions = *sessions
	}
	if *maxIter > 0 {
		cfg.MaxIter = *maxIter
	}
	cfg.Seed = *seed
	cfg.Verbose = *verbose
	cfg.Out = os.Stderr

	var ids []string
	if *run == "all" {
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		rep, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *metrics != "" {
		if err := dumpMetrics(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "aidebench: %v\n", err)
			os.Exit(1)
		}
	}
}

// dumpMetrics writes the cumulative internal counters (engine work,
// steering-loop effort, timing histograms) accumulated over every run,
// so BENCH_*.json trajectories can be correlated with where the engine
// actually spent its effort.
func dumpMetrics(path string) error {
	if path == "-" {
		return obs.Default.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCSV dumps one report into dir/<id>.csv.
func writeCSV(dir string, rep *bench.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, rep.ID+".csv"))
	if err != nil {
		return err
	}
	if err := rep.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
