// Command aideserver runs the AIDE exploration service: an HTTP+JSON API
// through which front-ends drive explore-by-example sessions, matching
// the middleware role AIDE plays in the paper's architecture.
//
//	aideserver -listen :8080 -sdss 100000 -auction 50000
//	aideserver -listen :8080 -csv items=items.csv -log-format json -pprof
//
// Protocol (see the service package for details):
//
//	POST   /v1/sessions                {"view":"sdss","seed":1}
//	GET    /v1/sessions/{id}/sample    next tuple to label
//	POST   /v1/sessions/{id}/label     {"row":123,"relevant":true}
//	GET    /v1/sessions/{id}/status
//	GET    /v1/sessions/{id}/query
//	GET    /v1/sessions/{id}/trace     per-iteration trace spans
//	DELETE /v1/sessions/{id}
//	GET    /v1/views                   view metadata (rows, attrs)
//	GET    /v1/metrics                 process metrics (expvar-style)
//	GET    /healthz                    liveness probe
//	GET    /debug/pprof/...            profiling (only with -pprof)
//
// The server logs one structured line per request (with a request id),
// evicts sessions idle longer than -session-ttl, and shuts down
// gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/service"
)

// csvFlags collects repeated -csv name=path flags.
type csvFlags map[string]string

func (c csvFlags) String() string { return fmt.Sprint(map[string]string(c)) }

func (c csvFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	c[name] = path
	return nil
}

func main() {
	var (
		listen      = flag.String("listen", ":8080", "listen address")
		sdssRows    = flag.Int("sdss", 100_000, "rows of the built-in SDSS view (0 to disable)")
		auctionRows = flag.Int("auction", 0, "rows of the built-in AuctionMark view (0 to disable)")
		seed        = flag.Int64("seed", 1, "dataset generation seed")
		attrs       = flag.String("sdss-attrs", "rowc,colc", "exploration attributes of the SDSS view")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		sessionTTL  = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this")
		csvs        = csvFlags{}
	)
	flag.Var(csvs, "csv", "register a CSV view as name=path (repeatable; numeric columns, header row)")
	flag.Parse()

	logger, err := obs.NewLogger(*logFormat, os.Stderr, slog.LevelInfo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aideserver: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	views := map[string]*engine.View{}
	if *sdssRows > 0 {
		v, err := engine.NewView(dataset.GenerateSDSS(*sdssRows, *seed), splitAttrs(*attrs))
		if err != nil {
			fatal("building sdss view", "err", err)
		}
		views["sdss"] = v
	}
	if *auctionRows > 0 {
		tab := dataset.GenerateAuction(*auctionRows, *seed)
		v, err := engine.NewView(tab, []string{"current_price", "num_bids"})
		if err != nil {
			fatal("building auction view", "err", err)
		}
		views["auction"] = v
	}
	for name, path := range csvs {
		f, err := os.Open(path)
		if err != nil {
			fatal("opening csv", "path", path, "err", err)
		}
		tab, err := dataset.ReadCSV(f, name, nil)
		f.Close()
		if err != nil {
			fatal("reading csv", "path", path, "err", err)
		}
		v, err := engine.NewView(tab, tab.Schema().Names())
		if err != nil {
			fatal("building csv view", "name", name, "err", err)
		}
		views[name] = v
	}
	if len(views) == 0 {
		fatal("no views configured (use -sdss, -auction or -csv)")
	}

	srv := service.NewServer(views)
	srv.SessionTTL = *sessionTTL

	mux := http.NewServeMux()
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	mux.Handle("/", srv)

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           service.WithRequestLog(logger, mux),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	srv.StartJanitor(ctx, time.Minute)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "views", srv.Views(), "listen", *listen,
		"session_ttl", sessionTTL.String(), "pprof", *pprofOn)

	select {
	case err := <-errc:
		fatal("listen", "err", err)
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fatal("shutdown", "err", err)
		}
		logger.Info("bye")
	}
}

func splitAttrs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
