// Command aideserver runs the AIDE exploration service: an HTTP+JSON API
// through which front-ends drive explore-by-example sessions, matching
// the middleware role AIDE plays in the paper's architecture.
//
//	aideserver -listen :8080 -sdss 100000 -auction 50000
//	aideserver -listen :8080 -csv items=items.csv
//
// Protocol (see the service package for details):
//
//	POST   /v1/sessions                {"view":"sdss","seed":1}
//	GET    /v1/sessions/{id}/sample    next tuple to label
//	POST   /v1/sessions/{id}/label     {"row":123,"relevant":true}
//	GET    /v1/sessions/{id}/status
//	GET    /v1/sessions/{id}/query
//	DELETE /v1/sessions/{id}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/engine"
	"github.com/explore-by-example/aide/internal/service"
)

// csvFlags collects repeated -csv name=path flags.
type csvFlags map[string]string

func (c csvFlags) String() string { return fmt.Sprint(map[string]string(c)) }

func (c csvFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	c[name] = path
	return nil
}

func main() {
	var (
		listen      = flag.String("listen", ":8080", "listen address")
		sdssRows    = flag.Int("sdss", 100_000, "rows of the built-in SDSS view (0 to disable)")
		auctionRows = flag.Int("auction", 0, "rows of the built-in AuctionMark view (0 to disable)")
		seed        = flag.Int64("seed", 1, "dataset generation seed")
		attrs       = flag.String("sdss-attrs", "rowc,colc", "exploration attributes of the SDSS view")
		csvs        = csvFlags{}
	)
	flag.Var(csvs, "csv", "register a CSV view as name=path (repeatable; numeric columns, header row)")
	flag.Parse()

	views := map[string]*engine.View{}
	if *sdssRows > 0 {
		v, err := engine.NewView(dataset.GenerateSDSS(*sdssRows, *seed), splitAttrs(*attrs))
		if err != nil {
			log.Fatalf("aideserver: sdss view: %v", err)
		}
		views["sdss"] = v
	}
	if *auctionRows > 0 {
		tab := dataset.GenerateAuction(*auctionRows, *seed)
		v, err := engine.NewView(tab, []string{"current_price", "num_bids"})
		if err != nil {
			log.Fatalf("aideserver: auction view: %v", err)
		}
		views["auction"] = v
	}
	for name, path := range csvs {
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("aideserver: %v", err)
		}
		tab, err := dataset.ReadCSV(f, name, nil)
		f.Close()
		if err != nil {
			log.Fatalf("aideserver: reading %s: %v", path, err)
		}
		v, err := engine.NewView(tab, tab.Schema().Names())
		if err != nil {
			log.Fatalf("aideserver: csv view %s: %v", name, err)
		}
		views[name] = v
	}
	if len(views) == 0 {
		log.Fatal("aideserver: no views configured (use -sdss, -auction or -csv)")
	}

	srv := service.NewServer(views)
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("aideserver: serving %d view(s) %v on %s", len(views), srv.Views(), *listen)
	log.Fatal(httpSrv.ListenAndServe())
}

func splitAttrs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
