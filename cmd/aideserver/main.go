// Command aideserver runs the AIDE exploration service: an HTTP+JSON API
// through which front-ends drive explore-by-example sessions, matching
// the middleware role AIDE plays in the paper's architecture.
//
//	aideserver -listen :8080 -sdss 100000 -auction 50000
//	aideserver -listen :8080 -csv items=items.csv -log-format json -pprof
//
// Protocol (see the service package for details):
//
//	POST   /v1/sessions                {"view":"sdss","seed":1}
//	GET    /v1/sessions/{id}/sample    next tuple to label
//	POST   /v1/sessions/{id}/label     {"row":123,"relevant":true}
//	GET    /v1/sessions/{id}/status
//	GET    /v1/sessions/{id}/query
//	GET    /v1/sessions/{id}/trace     per-iteration trace spans
//	GET    /v1/sessions/{id}/events    flight-recorder events (JSONL)
//	DELETE /v1/sessions/{id}
//	GET    /v1/views                   view metadata (rows, attrs)
//	GET    /v1/metrics                 process metrics (expvar-style)
//	GET    /v1/slo                     SLO burn-rate status
//	GET    /metrics                    Prometheus text exposition
//	GET    /healthz                    liveness probe (+ SLO detail)
//	GET    /debug/pprof/...            profiling (only with -pprof)
//
// The server logs one structured line per request (with a request id),
// recovers panics without dying, evicts sessions idle longer than
// -session-ttl, and shuts down gracefully on SIGINT/SIGTERM.
//
// With -data-dir set, every session is backed by a write-ahead log and
// survives a crash: on start the server replays the logs it finds and
// resurrects the sessions under their original IDs (see -fsync and
// -snapshot-every for the durability/cost trade-offs).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/explore-by-example/aide/internal/dataset"
	"github.com/explore-by-example/aide/internal/durable"
	"github.com/explore-by-example/aide/internal/explore"
	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/service"
)

// csvFlags collects repeated -csv name=path flags.
type csvFlags map[string]string

func (c csvFlags) String() string { return fmt.Sprint(map[string]string(c)) }

func (c csvFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	c[name] = path
	return nil
}

func main() {
	var (
		listen      = flag.String("listen", ":8080", "listen address")
		sdssRows    = flag.Int("sdss", 100_000, "rows of the built-in SDSS view (0 to disable)")
		auctionRows = flag.Int("auction", 0, "rows of the built-in AuctionMark view (0 to disable)")
		seed        = flag.Int64("seed", 1, "dataset generation seed")
		attrs       = flag.String("sdss-attrs", "rowc,colc", "exploration attributes of the SDSS view")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		sessionTTL  = flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this")

		dataDir       = flag.String("data-dir", "", "write-ahead log directory; empty disables durability")
		fsyncMode     = flag.String("fsync", "always", "WAL fsync policy: always, interval or never")
		fsyncEvery    = flag.Duration("fsync-interval", 100*time.Millisecond, "sync window for -fsync=interval")
		snapshotEvery = flag.Int("snapshot-every", 0, "compact the WAL around a snapshot every N labels (0 keeps the full label history and bit-identical recovery)")

		requestTimeout    = flag.Duration("request-timeout", time.Minute, "per-request handler deadline (0 disables); keep it above the sample long-poll window")
		readTimeout       = flag.Duration("read-timeout", 1*time.Minute, "max duration reading an entire request")
		writeTimeout      = flag.Duration("write-timeout", 2*time.Minute, "max duration writing a response")
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "max duration reading request headers")
		maxInflight       = flag.Int("max-inflight", 0, "shed requests with 503 beyond this many in flight (0 disables)")
		maxBodyBytes      = flag.Int64("max-body-bytes", 1<<20, "largest accepted request body")
		addrFile          = flag.String("addr-file", "", "write the bound listen address to this file (useful with -listen :0)")

		cacheBytes = flag.Int64("cache-bytes", 64<<20, "shared predicate-result cache budget per view, in bytes (0 disables); cached results are bit-identical to uncached ones")

		shards        = flag.Int("shards", 0, "split each view into this many supervised shards (0 disables); results are bit-identical at any shard count, and a failing shard degrades to named partial results instead of failing queries")
		shardDeadline = flag.Duration("shard-deadline", 0, "per-shard attempt deadline; a shard past it is retried, then dropped from the op's answer (0 disables)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "launch a hedged duplicate shard attempt after this long without an answer (0 disables)")
		shardAddrs    stringList

		sloLatency    = flag.Duration("slo-latency", 500*time.Millisecond, "latency SLO threshold: a request slower than this is bad")
		sloLatencyObj = flag.Float64("slo-latency-objective", 0.99, "target fraction of requests under -slo-latency")
		sloErrorObj   = flag.Float64("slo-error-objective", 0.999, "target fraction of non-5xx requests")
		sloBurn       = flag.Float64("slo-burn-threshold", 2, "burn rate both windows must exceed to report an SLO as burning")
		sloOff        = flag.Bool("no-slo", false, "disable SLO monitoring (/v1/slo reports empty healthy status)")

		conflictPolicy = flag.String("conflict-policy", "last-wins", "default resolution of contradictory labels: last-wins, majority or strict (sessions may override)")
		budgetRows     = flag.Int("budget-labeled-rows", 0, "default cap on labeled rows per session (0 unlimited)")
		budgetIterTime = flag.Duration("budget-iteration-time", 0, "default soft cap on one steering iteration's wall time (0 unlimited)")
		budgetSamples  = flag.Int("budget-samples-per-iteration", 0, "default hard cap on labels per iteration (0 unlimited)")
		budgetNodes    = flag.Int("budget-tree-nodes", 0, "default cap on decision-tree nodes (0 unlimited)")
		budgetMem      = flag.Int64("budget-mem-bytes", 0, "default per-iteration scratch-memory bound; clustering discovery degrades to grid beyond it (0 unlimited)")

		csvs = csvFlags{}
	)
	flag.Var(csvs, "csv", "register a CSV view as name=path (repeatable; numeric columns, header row)")
	flag.Var(&shardAddrs, "shard-addr", "aideshard worker address (repeatable; host:port TCP or a unix-socket path); with -shards, the worker's announced shards are served remotely and the rest stay in-process")
	flag.Parse()

	logger, err := obs.NewLogger(*logFormat, os.Stderr, slog.LevelInfo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aideserver: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Views are acquired through the shared registry: identical data
	// registered twice (here or by another server in-process) shares one
	// set of covering indexes, and -cache-bytes attaches a predicate
	// result cache shared by every session over the view.
	srv := service.NewServer(nil)
	srv.CacheBytes = *cacheBytes
	srv.Shards = *shards
	srv.ShardDeadline = *shardDeadline
	srv.HedgeAfter = *hedgeAfter
	srv.ShardAddrs = shardAddrs
	defer srv.Close()
	if *sdssRows > 0 {
		tab := dataset.GenerateSDSS(*sdssRows, *seed)
		if err := srv.RegisterTable("sdss", tab, splitAttrs(*attrs), 0); err != nil {
			fatal("building sdss view", "err", err)
		}
	}
	if *auctionRows > 0 {
		tab := dataset.GenerateAuction(*auctionRows, *seed)
		if err := srv.RegisterTable("auction", tab, []string{"current_price", "num_bids"}, 0); err != nil {
			fatal("building auction view", "err", err)
		}
	}
	for name, path := range csvs {
		f, err := os.Open(path)
		if err != nil {
			fatal("opening csv", "path", path, "err", err)
		}
		tab, err := dataset.ReadCSV(f, name, nil)
		f.Close()
		if err != nil {
			fatal("reading csv", "path", path, "err", err)
		}
		if err := srv.RegisterTable(name, tab, tab.Schema().Names(), 0); err != nil {
			fatal("building csv view", "name", name, "err", err)
		}
	}
	if len(srv.Views()) == 0 {
		fatal("no views configured (use -sdss, -auction or -csv)")
	}

	srv.SessionTTL = *sessionTTL
	srv.SnapshotEvery = *snapshotEvery
	srv.MaxInflight = *maxInflight
	srv.MaxBodyBytes = *maxBodyBytes
	policy, err := explore.ParseConflictPolicy(*conflictPolicy)
	if err != nil {
		fatal("bad -conflict-policy", "err", err)
	}
	srv.DefaultConflictPolicy = policy
	srv.DefaultBudget = explore.Budget{
		MaxLabeledRows:         *budgetRows,
		MaxIterationTime:       *budgetIterTime,
		MaxSamplesPerIteration: *budgetSamples,
		MaxTreeNodes:           *budgetNodes,
		MaxMemBytes:            *budgetMem,
	}

	if !*sloOff {
		cfg := obs.DefaultSLOConfig()
		cfg.LatencyThreshold = *sloLatency
		cfg.LatencyObjective = *sloLatencyObj
		cfg.ErrorObjective = *sloErrorObj
		cfg.BurnAlertThreshold = *sloBurn
		mon, err := obs.NewSLOMonitor(cfg)
		if err != nil {
			fatal("bad SLO configuration", "err", err)
		}
		srv.SLO = mon
	}

	if *dataDir != "" {
		policy, err := durable.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			fatal("bad -fsync", "err", err)
		}
		m, err := durable.NewManager(*dataDir, durable.Options{Fsync: policy, SyncEvery: *fsyncEvery})
		if err != nil {
			fatal("opening data dir", "dir", *dataDir, "err", err)
		}
		defer m.Close()
		srv.Durable = m
		n, err := srv.RecoverSessions(logger)
		if err != nil {
			fatal("recovering sessions", "dir", *dataDir, "err", err)
		}
		logger.Info("durability enabled", "dir", *dataDir, "fsync", *fsyncMode,
			"snapshot_every", *snapshotEvery, "sessions_recovered", n)
	}

	mux := http.NewServeMux()
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	mux.Handle("/", srv)

	// Middleware, outermost first: the request log assigns the request
	// id, recovery catches handler panics (and logs them under that id),
	// and the deadline bounds each handler's work.
	handler := service.WithRequestLog(logger,
		service.WithRecovery(logger,
			service.WithDeadline(*requestTimeout, mux)))
	httpSrv := &http.Server{
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("listen", "addr", *listen, "err", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal("writing addr file", "path", *addrFile, "err", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	srv.StartJanitor(ctx, time.Minute)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("serving", "views", srv.Views(), "listen", ln.Addr().String(),
		"session_ttl", sessionTTL.String(), "pprof", *pprofOn)

	select {
	case err := <-errc:
		fatal("listen", "err", err)
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fatal("shutdown", "err", err)
		}
		logger.Info("bye")
	}
}

// stringList collects a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func splitAttrs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
