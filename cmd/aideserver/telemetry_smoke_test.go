package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/obs"
	"github.com/explore-by-example/aide/internal/service"
)

// TestTelemetrySmoke is the CI observability gate: boot a real
// aideserver, run a short exploration, scrape /metrics and validate the
// Prometheus exposition, check the SLO endpoint, and assert the
// flight-recorder journal on disk is well-formed JSONL.
func TestTelemetrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	dataDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	_, url := startChild(t, dataDir, "telemetry")
	c := service.NewClient(url, nil)

	id, err := c.CreateSession(ctx, service.CreateSessionRequest{
		View: "sdss", Seed: 3, SamplesPerIteration: 5, MaxIterations: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		sample, err := c.NextSample(ctx, id)
		if err != nil {
			t.Fatalf("label %d: NextSample: %v", i, err)
		}
		relevant := int(sample.Values["rowc"])%3 == 0
		if err := c.SubmitLabel(ctx, id, sample.Row, relevant); err != nil {
			t.Fatalf("label %d: SubmitLabel: %v", i, err)
		}
	}

	// Scrape the Prometheus endpoint and validate the exposition format.
	raw, err := c.PrometheusMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(raw); err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}

	// The JSON snapshot answers too, with the runtime gauges present.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := m["go_goroutines"].(float64); !ok || g < 1 {
		t.Errorf("go_goroutines = %v, want >= 1", m["go_goroutines"])
	}

	// The SLO monitor is on by default and healthy under this traffic.
	slo, err := c.SLO(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !slo.Healthy || slo.Latency.Long.Total == 0 {
		t.Errorf("slo = %+v, want healthy with recorded requests", slo)
	}

	// The events endpoint streams the retained flight events.
	events, err := c.Events(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no flight events recorded")
	}

	// The journal on disk (next to the WAL) is well-formed JSONL.
	path := filepath.Join(dataDir, id+".events.jsonl")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("flight journal missing: %v", err)
	}
	fromDisk, err := obs.ReadJournal(f)
	f.Close()
	if err != nil {
		t.Fatalf("flight journal malformed: %v", err)
	}
	if len(fromDisk) < len(events) {
		t.Errorf("journal holds %d events, endpoint served %d", len(fromDisk), len(events))
	}
	for _, ev := range fromDisk {
		if ev.Schema != obs.FlightEventSchema || ev.Session != id {
			t.Fatalf("journal event not stamped: %+v", ev)
		}
	}

	if err := c.Close(ctx, id); err != nil {
		t.Fatal(err)
	}
}
