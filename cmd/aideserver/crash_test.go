package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"github.com/explore-by-example/aide/internal/service"
)

// The crash test re-execs this test binary as a real aideserver child:
// when the guard variable is set, TestMain runs main() instead of the
// test suite, and os.Args carries ordinary server flags.
const crashChildEnv = "AIDESERVER_CRASH_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startChild launches an aideserver child on a kernel-chosen port and
// returns its process and base URL once the server has bound.
func startChild(t *testing.T, dataDir string, tag string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr-"+tag)
	cmd := exec.Command(os.Args[0],
		"-listen", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-sdss", "2000",
		"-data-dir", dataDir,
		"-fsync", "always",
	)
	cmd.Env = append(os.Environ(), crashChildEnv+"=1")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting server child: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	deadline := time.Now().Add(30 * time.Second)
	for {
		if addr, err := os.ReadFile(addrFile); err == nil && len(addr) > 0 {
			return cmd, "http://" + string(addr)
		}
		if time.Now().After(deadline) {
			t.Fatal("server child never wrote its address")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCrashRecoverySIGKILL drives a session against a live aideserver,
// kills the process with SIGKILL mid-exploration, restarts it over the
// same data directory, and checks the session came back under its
// original ID with every label intact and accepting new ones.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	dataDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	child1, url1 := startChild(t, dataDir, "1")
	c1 := service.NewClient(url1, nil)
	id, err := c1.CreateSession(ctx, service.CreateSessionRequest{
		View: "sdss", Seed: 7, SamplesPerIteration: 5, MaxIterations: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	const beforeKill = 12
	label := func(c *service.Client, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			sample, err := c.NextSample(ctx, id)
			if err != nil {
				t.Fatalf("label %d: NextSample: %v", i, err)
			}
			relevant := int(sample.Values["rowc"])%3 == 0
			if err := c.SubmitLabel(ctx, id, sample.Row, relevant); err != nil {
				t.Fatalf("label %d: SubmitLabel: %v", i, err)
			}
		}
	}
	label(c1, beforeKill)

	// No graceful anything: the process dies mid-flight.
	if err := child1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child1.Wait()

	_, url2 := startChild(t, dataDir, "2")
	c2 := service.NewClient(url2, nil)
	// The session is back under the same ID; replay of the logged labels
	// happens on the session goroutine, and Status counts completed
	// iterations only, so poll for the last full iteration's worth (the
	// trailing labels sit in the in-flight iteration until the user
	// finishes it below).
	waitLabeled := func(want int) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			st, err := c2.Status(ctx, id)
			if err != nil {
				t.Fatalf("recovered session not addressable: %v", err)
			}
			if st.TotalLabeled >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replay stalled at %d labels, want %d", st.TotalLabeled, want)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitLabeled(beforeKill / 5 * 5)
	// The exploration continues where it left off: three more labels
	// finish the interrupted iteration, and every pre-crash label counts.
	label(c2, 3)
	waitLabeled(beforeKill + 3)
	if _, err := c2.PredictedQuery(ctx, id); err != nil {
		t.Fatalf("predicted query after recovery: %v", err)
	}
	if err := c2.Close(ctx, id); err != nil {
		t.Fatal(err)
	}
}
