// Command aidegen generates the synthetic datasets of the evaluation
// (the SDSS-like PhotoObjAll table and the AuctionMark-like ITEM table)
// and writes them as CSV, so the data AIDE explores can be inspected or
// loaded elsewhere.
//
//	aidegen -dataset sdss -rows 100000 > photoobjall.csv
//	aidegen -dataset auction -rows 50000 -seed 7 > item.csv
//	aidegen -dataset uniform -rows 1000 -dims 3 > uniform.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/explore-by-example/aide/internal/dataset"
)

func main() {
	var (
		kind = flag.String("dataset", "sdss", "dataset to generate: sdss, auction, uniform")
		rows = flag.Int("rows", 100_000, "number of rows")
		dims = flag.Int("dims", 2, "dimensions (uniform only)")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var tab *dataset.Table
	switch *kind {
	case "sdss":
		tab = dataset.GenerateSDSS(*rows, *seed)
	case "auction":
		tab = dataset.GenerateAuction(*rows, *seed)
	case "uniform":
		tab = dataset.GenerateUniform(*rows, *dims, *seed)
	default:
		fmt.Fprintf(os.Stderr, "aidegen: unknown dataset %q (want sdss, auction, uniform)\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, c := range tab.Schema() {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c.Name)
	}
	w.WriteByte('\n')
	for r := 0; r < tab.NumRows(); r++ {
		for c := 0; c < tab.NumCols(); c++ {
			if c > 0 {
				w.WriteByte(',')
			}
			w.WriteString(strconv.FormatFloat(tab.Value(r, c), 'g', -1, 64))
		}
		w.WriteByte('\n')
	}
}
