package aide_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	aide "github.com/explore-by-example/aide"
)

// TestPublicAPIEndToEnd exercises the whole supported surface the way a
// downstream user would: generate data, build a view, steer a session
// against a simulated user, and inspect the predicted query.
func TestPublicAPIEndToEnd(t *testing.T) {
	tab := aide.GenerateSDSS(50_000, 1)
	view, err := aide.NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := aide.GenerateTarget(view, aide.TargetSpec{NumAreas: 1, Size: aide.Large}, 7)
	if err != nil {
		t.Fatal(err)
	}
	user := aide.NewSimulatedUser(target)
	session, err := aide.NewSession(view, user, aide.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := aide.RunTrace(session, view, target, 0.7, 120)
	if err != nil {
		t.Fatal(err)
	}
	if trace.MaxF() < 0.7 {
		t.Fatalf("session reached F=%.3f, want >= 0.7", trace.MaxF())
	}
	q := session.FinalQuery()
	if q.Table != "PhotoObjAll" {
		t.Errorf("query table = %q", q.Table)
	}
	sql := q.SQL()
	if !strings.HasPrefix(sql, "SELECT * FROM PhotoObjAll WHERE") {
		t.Errorf("SQL = %q", sql)
	}
	sel, err := q.Selectivity(view)
	if err != nil {
		t.Fatal(err)
	}
	if sel <= 0 || sel > 0.2 {
		t.Errorf("selectivity = %v, implausible for a large target area", sel)
	}
}

func TestPublicAPICustomTableAndOracle(t *testing.T) {
	schema := aide.Schema{
		{Name: "age", Min: 0, Max: 100},
		{Name: "dosage", Min: 0, Max: 60},
	}
	b := aide.NewBuilder("trials", schema)
	for age := 0.0; age < 100; age += 0.5 {
		for dosage := 0.0; dosage < 60; dosage += 3 {
			b.Add(age, dosage)
		}
	}
	tab := b.Build()
	view, err := aide.NewView(tab, []string{"age", "dosage"})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's running example: relevant trials have
	// 20 < age <= 40 and dosage <= 10.
	oracle := aide.OracleFunc(func(v *aide.View, row int) bool {
		p := v.RawPoint(row)
		return p[0] > 20 && p[0] <= 40 && p[1] <= 10
	})
	session, err := aide.NewSession(view, oracle, aide.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aide.RunUntil(session, func(r *aide.IterationResult) bool {
		return r.TotalLabeled >= 500
	}, 50); err != nil {
		t.Fatal(err)
	}
	q := session.FinalQuery()
	if len(q.Areas) == 0 {
		t.Fatal("no areas predicted")
	}
	// The predicted query should select mostly-relevant tuples.
	rows, err := q.Execute(view)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("query selects nothing")
	}
	relevant := 0
	for _, row := range rows {
		if oracle(view, row) {
			relevant++
		}
	}
	if frac := float64(relevant) / float64(len(rows)); frac < 0.7 {
		t.Errorf("precision of final query = %.2f", frac)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	tab := aide.GenerateUniform(5_000, 2, 3)
	view, err := aide.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	target := aide.Target{Areas: []aide.Rect{aide.R(20, 60, 20, 60)}}
	for _, mk := range []func() (aide.Explorer, error){
		func() (aide.Explorer, error) {
			return aide.NewRandom(view, aide.NewSimulatedUser(target), 20, 1)
		},
		func() (aide.Explorer, error) {
			return aide.NewRandomGrid(view, aide.NewSimulatedUser(target), 20, 4, 1)
		},
	} {
		e, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := aide.RunUntil(e, nil, 10); err != nil {
			t.Fatal(err)
		}
		if e.LabeledCount() == 0 {
			t.Error("baseline labeled nothing")
		}
	}
}

func TestPublicAPISampledDatasets(t *testing.T) {
	tab := aide.GenerateSDSS(50_000, 4)
	view, err := aide.NewView(tab, []string{"rowc", "colc"})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := view.Sampled(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.NumRows() != 5_000 {
		t.Errorf("sampled rows = %d, want 5000", sampled.NumRows())
	}
	// Exploration on the sampled view, evaluation on the full view — the
	// Section 5.2 optimization.
	target, err := aide.GenerateTarget(view, aide.TargetSpec{NumAreas: 1, Size: aide.Large}, 6)
	if err != nil {
		t.Fatal(err)
	}
	session, err := aide.NewSession(sampled, aide.NewSimulatedUser(target), aide.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trace, err := aide.RunTrace(session, view, target, 0.7, 120)
	if err != nil {
		t.Fatal(err)
	}
	if trace.MaxF() < 0.6 {
		t.Errorf("sampled-dataset exploration reached only F=%.3f", trace.MaxF())
	}
}

func TestPublicAPIEvaluator(t *testing.T) {
	tab := aide.GenerateUniform(10_000, 2, 7)
	view, err := aide.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	targetRects := []aide.Rect{aide.R(0, 30, 0, 30)}
	ev, err := aide.NewEvaluator(view, targetRects)
	if err != nil {
		t.Fatal(err)
	}
	m := ev.Measure(targetRects)
	if m.F != 1 {
		t.Errorf("self-measure F = %v", m.F)
	}
}

func TestPublicAPIManualSimulation(t *testing.T) {
	tab := aide.GenerateAuction(20_000, 8)
	view, err := aide.NewView(tab, []string{"current_price", "num_bids"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := aide.GenerateTarget(view, aide.TargetSpec{NumAreas: 1, Size: aide.Large, DenseOnly: true}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res := aide.SimulateManual(view, target, aide.ManualParams{}, 10)
	if res.ReviewedObjects == 0 || res.Queries == 0 {
		t.Errorf("manual simulation empty: %+v", res)
	}
}

func TestPublicAPIHelpers(t *testing.T) {
	r := aide.R(0, 10, 20, 30)
	if r.Dims() != 2 || r[1].Lo != 20 {
		t.Errorf("R = %v", r)
	}
	full := aide.FullDomain(3)
	if full.Dims() != 3 || full[0].Hi != 100 {
		t.Errorf("FullDomain = %v", full)
	}
}

func TestPublicAPISessionPersistence(t *testing.T) {
	tab := aide.GenerateUniform(10_000, 2, 30)
	view, err := aide.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	hidden := aide.R(20, 40, 20, 40)
	oracle := aide.OracleFunc(func(v *aide.View, row int) bool {
		return hidden.Contains(v.NormPoint(row))
	})
	session, err := aide.NewSession(view, oracle, aide.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := session.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := session.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := aide.ResumeSession(&buf, view, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.LabeledCount() != session.LabeledCount() {
		t.Errorf("resumed labels = %d, want %d", resumed.LabeledCount(), session.LabeledCount())
	}
	if _, err := resumed.RunIteration(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIService(t *testing.T) {
	tab := aide.GenerateUniform(5_000, 2, 31)
	view, err := aide.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(aide.NewServiceServer(map[string]*aide.View{"u": view}))
	defer srv.Close()
	client := aide.NewServiceClient(srv.URL, nil)
	ctx := context.Background()
	id, err := client.CreateSession(ctx, aide.CreateSessionRequest{View: "u", Seed: 1, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close(ctx, id)
	for i := 0; i < 10; i++ {
		sample, err := client.NextSample(ctx, id)
		if errors.Is(err, aide.ErrSessionDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := client.SubmitLabel(ctx, id, sample.Row, false); err != nil {
			t.Fatal(err)
		}
	}
	q, err := client.PredictedQuery(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "uniform" {
		t.Errorf("table = %q", q.Table)
	}
}

func TestPublicAPIQueryParseRoundTrip(t *testing.T) {
	tab := aide.GenerateUniform(2_000, 2, 32)
	view, err := aide.NewView(tab, []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	q := aide.Query{
		Table:   "uniform",
		Attrs:   []string{"a0", "a1"},
		Areas:   []aide.Rect{aide.R(10, 20, 30, 40)},
		Domains: aide.R(0, 100, 0, 100),
	}
	parsed, err := aide.ParseQuery(q.SQL(), q.Attrs, q.Domains)
	if err != nil {
		t.Fatal(err)
	}
	a, err := q.Execute(view)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parsed.Execute(view)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("round-tripped query selects %d rows, original %d", len(b), len(a))
	}
}
