package aide_test

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section 6). Each benchmark executes the corresponding experiment
// runner at reduced (quick) scale — b.N experiment repetitions — and
// reports the headline quantity of that artifact as a custom metric, so
// `go test -bench=. -benchmem` regenerates a compact form of the whole
// evaluation. Full-scale runs: `go run ./cmd/aidebench -run all`.

import (
	"strconv"
	"strings"
	"testing"

	"github.com/explore-by-example/aide/internal/bench"
)

// benchConfig is the reduced scale used under testing.B.
func benchConfig() bench.Config {
	cfg := bench.QuickConfig()
	cfg.Rows = 20_000
	cfg.Sessions = 2
	return cfg
}

// runExperiment executes the experiment b.N times and reports one custom
// metric extracted from the final report.
func runExperiment(b *testing.B, id string, metric string, extract func(*bench.Report) float64) {
	b.Helper()
	var last *bench.Report
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	if last != nil && extract != nil {
		b.ReportMetric(extract(last), metric)
	}
}

// cell parses report cell (r, c) as a float, tolerating annotations such
// as "123 (2/3)", "87%" and "-" (which yields 0).
func cell(rep *bench.Report, r, c int) float64 {
	if r >= len(rep.Rows) || c >= len(rep.Rows[r]) {
		return 0
	}
	s := rep.Rows[r][c]
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

// BenchmarkFig8a regenerates Figure 8(a): accuracy vs samples per area
// size. Metric: samples AIDE-Large needed for 70% accuracy.
func BenchmarkFig8a(b *testing.B) {
	runExperiment(b, "fig8a", "samples-large@70%", func(rep *bench.Report) float64 {
		return cell(rep, 5, 1)
	})
}

// BenchmarkFig8b regenerates Figure 8(b): accuracy vs samples per number
// of areas. Metric: samples for 1 area at 70%.
func BenchmarkFig8b(b *testing.B) {
	runExperiment(b, "fig8b", "samples-1area@70%", func(rep *bench.Report) float64 {
		return cell(rep, 5, 1)
	})
}

// BenchmarkFig8c regenerates Figure 8(c): per-iteration wait time.
// Metric: seconds per iteration for large areas at 70%.
func BenchmarkFig8c(b *testing.B) {
	runExperiment(b, "fig8c", "sec/iter-large@70%", func(rep *bench.Report) float64 {
		return cell(rep, 5, 1)
	})
}

// BenchmarkFig8d regenerates Figure 8(d): AIDE vs the random baselines.
// Metric: Random-to-AIDE sample ratio on large areas (paper: ~4x).
func BenchmarkFig8d(b *testing.B) {
	runExperiment(b, "fig8d", "random/aide-ratio", func(rep *bench.Report) float64 {
		aideN, randomN := cell(rep, 0, 1), cell(rep, 0, 2)
		if aideN == 0 {
			return 0
		}
		return randomN / aideN
	})
}

// BenchmarkFig8e regenerates Figure 8(e): baselines vs number of areas.
// Metric: AIDE samples for 7 areas.
func BenchmarkFig8e(b *testing.B) {
	runExperiment(b, "fig8e", "aide-samples-7areas", func(rep *bench.Report) float64 {
		return cell(rep, 3, 1)
	})
}

// BenchmarkFig8f regenerates Figure 8(f): the phase ablation. Metric:
// grid-only to full-AIDE sample ratio at 60% accuracy.
func BenchmarkFig8f(b *testing.B) {
	runExperiment(b, "fig8f", "gridonly/full-ratio@60%", func(rep *bench.Report) float64 {
		grid, full := cell(rep, 4, 1), cell(rep, 4, 3)
		if full == 0 {
			return 0
		}
		return grid / full
	})
}

// BenchmarkFig9a regenerates Figure 9(a): database-size independence.
// Metric: F at 500 samples on the largest database.
func BenchmarkFig9a(b *testing.B) {
	runExperiment(b, "fig9a", "F@500-100GBscale", func(rep *bench.Report) float64 {
		return cell(rep, len(rep.Rows)-1, 3)
	})
}

// BenchmarkFig9b regenerates Figure 9(b): sampled datasets. Metric: time
// improvement (%) on the largest database.
func BenchmarkFig9b(b *testing.B) {
	runExperiment(b, "fig9b", "time-improvement-%", func(rep *bench.Report) float64 {
		return cell(rep, len(rep.Rows)-1, 2)
	})
}

// BenchmarkFig9c regenerates Figure 9(c): sampled-dataset speedup vs
// query complexity. Metric: improvement (%) at 7 areas.
func BenchmarkFig9c(b *testing.B) {
	runExperiment(b, "fig9c", "improvement-%@7areas", func(rep *bench.Report) float64 {
		return cell(rep, 3, 3)
	})
}

// BenchmarkFig10a regenerates Figure 10(a): dimensionality scaling.
// Metric: 5D-to-2D sample ratio for 1 area (paper: ~1.3x).
func BenchmarkFig10a(b *testing.B) {
	runExperiment(b, "fig10a", "5D/2D-sample-ratio", func(rep *bench.Report) float64 {
		d2, d5 := cell(rep, 0, 1), cell(rep, 0, 4)
		if d2 == 0 {
			return 0
		}
		return d5 / d2
	})
}

// BenchmarkFig10b regenerates Figure 10(b): per-iteration time across
// dimensionalities. Metric: seconds per iteration in 5D, 7 areas.
func BenchmarkFig10b(b *testing.B) {
	runExperiment(b, "fig10b", "sec/iter-5D-7areas", func(rep *bench.Report) float64 {
		return cell(rep, 3, 4)
	})
}

// BenchmarkFig10c regenerates Figure 10(c): skewed spaces. Metric:
// grid-to-clustering sample ratio on the Skew space (paper: ~8x).
func BenchmarkFig10c(b *testing.B) {
	runExperiment(b, "fig10c", "grid/clustering-skew", func(rep *bench.Report) float64 {
		grid, cl := cell(rep, 2, 1), cell(rep, 2, 2)
		if cl == 0 {
			return 0
		}
		return grid / cl
	})
}

// BenchmarkFig10d regenerates Figure 10(d): the distance hint. Metric:
// no-hint to hint sample ratio for 1 area (>1 means the hint helps).
func BenchmarkFig10d(b *testing.B) {
	runExperiment(b, "fig10d", "nohint/hint-1area", func(rep *bench.Report) float64 {
		nohint, hint := cell(rep, 0, 1), cell(rep, 0, 2)
		if hint == 0 {
			return 0
		}
		return nohint / hint
	})
}

// BenchmarkFig10e regenerates Figure 10(e): clustered misclassified
// exploitation. Metric: time improvement (%) at 7 areas (paper: ~45%).
func BenchmarkFig10e(b *testing.B) {
	runExperiment(b, "fig10e", "improvement-%@7areas", func(rep *bench.Report) float64 {
		return cell(rep, 3, 3)
	})
}

// BenchmarkFig10f regenerates Figure 10(f): adaptive boundary sampling.
// Metric: adaptive-minus-fixed accuracy delta at 500 samples, 7 areas
// (paper: ~+12% on average).
func BenchmarkFig10f(b *testing.B) {
	runExperiment(b, "fig10f", "adaptive-fixed-delta", func(rep *bench.Report) float64 {
		return cell(rep, 3, 2) - cell(rep, 3, 1)
	})
}

// BenchmarkTable1 regenerates Table 1: the user study. Metric: average
// reviewing savings (%) across the seven users (paper: 66%).
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", "avg-review-savings-%", func(rep *bench.Report) float64 {
		var sum float64
		for r := range rep.Rows {
			sum += cell(rep, r, 4)
		}
		return sum / float64(len(rep.Rows))
	})
}
